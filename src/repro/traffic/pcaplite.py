"""pcap-lite: a streaming fixed-record packet format.

The NPZ trace format (:mod:`repro.traffic.trace_io`) is columnar and must
be materialized whole.  Long captures — the paper records "5-tuple, the
packet size and the timestamp of every single packet" for 113 hours onto a
4 TB disk — want an appendable, streamable format instead.  pcap-lite is
that: a 16-byte header followed by fixed 24-byte records::

    timestamp  f64   (seconds)
    src_ip     u32
    dst_ip     u32
    src_port   u16
    dst_port   u16
    protocol   u8
    (pad)      u8    (zero)
    size       u16   (wire bytes)

Little-endian throughout.  The reader streams records without loading the
file; converters bridge to/from the columnar :class:`Trace`.
"""

from __future__ import annotations

import os
import struct
from typing import Iterator

import numpy as np

from repro.errors import TraceFormatError
from repro.traffic.packet import FiveTuple, FlowTable, Trace

MAGIC = b"IMPL"
FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sHH8x")  # magic, version, reserved, pad to 16
_RECORD = struct.Struct("<dIIHHBxH")
RECORD_BYTES = _RECORD.size
HEADER_BYTES = _HEADER.size

#: The record layout as a packed structured dtype — one ``frombuffer``
#: call reads a whole block of records (the streaming sources' path).
RECORD_DTYPE = np.dtype(
    [
        ("timestamp", "<f8"),
        ("src_ip", "<u4"),
        ("dst_ip", "<u4"),
        ("src_port", "<u2"),
        ("dst_port", "<u2"),
        ("protocol", "u1"),
        ("pad", "u1"),
        ("size", "<u2"),
    ]
)
assert RECORD_DTYPE.itemsize == RECORD_BYTES


class PacketRecordWriter:
    """Streaming pcap-lite writer (context manager)."""

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self._file = open(path, "wb")
        self._file.write(_HEADER.pack(MAGIC, FORMAT_VERSION, 0))
        self.records_written = 0

    def write(self, timestamp: float, five_tuple: FiveTuple, size: int) -> None:
        """Append one packet record."""
        self._file.write(
            _RECORD.pack(
                timestamp,
                five_tuple.src_ip,
                five_tuple.dst_ip,
                five_tuple.src_port,
                five_tuple.dst_port,
                five_tuple.protocol,
                size,
            )
        )
        self.records_written += 1

    def flush(self) -> None:
        """Flush buffered records to the OS — the point at which a
        tailing :meth:`PacketRecordReader.read_block` can see them."""
        self._file.flush()

    def close(self) -> None:
        """Close the underlying file."""
        self._file.close()

    def __enter__(self) -> "PacketRecordWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PacketRecordReader:
    """Streaming pcap-lite reader: iterates (timestamp, FiveTuple, size).

    Two access styles, not meant to be mixed on one instance: the
    iterator yields decoded per-packet tuples; :meth:`read_block` /
    :meth:`seek_record` move whole record blocks as structured arrays
    (the vectorized path the streaming chunk sources use to tail a
    growing capture).
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = os.fspath(path)
        #: Records consumed through the block interface so far (the
        #: resume position a checkpoint records).
        self.records_read = 0
        self._pending = b""
        try:
            self._file = open(path, "rb")
        except OSError as exc:
            raise TraceFormatError(f"cannot open {path!r}: {exc}") from exc
        header = self._file.read(_HEADER.size)
        if len(header) != _HEADER.size:
            self._file.close()
            raise TraceFormatError(f"{path!r}: truncated pcap-lite header")
        magic, version, _reserved = _HEADER.unpack(header)
        if magic != MAGIC:
            self._file.close()
            raise TraceFormatError(f"{path!r}: not a pcap-lite file")
        if version != FORMAT_VERSION:
            self._file.close()
            raise TraceFormatError(
                f"{path!r}: pcap-lite version {version}, expected {FORMAT_VERSION}"
            )

    def __iter__(self) -> Iterator["tuple[float, FiveTuple, int]"]:
        while True:
            chunk = self._file.read(RECORD_BYTES)
            if not chunk:
                return
            if len(chunk) != RECORD_BYTES:
                raise TraceFormatError(f"{self.path!r}: truncated record")
            (ts, src_ip, dst_ip, src_port, dst_port, proto, size) = _RECORD.unpack(
                chunk
            )
            yield ts, FiveTuple(src_ip, dst_ip, src_port, dst_port, proto), size

    def read_block(self, max_records: int) -> np.ndarray:
        """Up to ``max_records`` complete records as a structured array.

        Never blocks on file growth: returns whatever complete records
        are on disk right now (possibly an empty array).  A trailing
        partial record — the normal mid-append state of a live capture —
        is buffered and completed by a later call, which is what lets a
        follow-mode source tail a file its writer is still flushing.
        The returned array is read-only (it views the read buffer).
        """
        want = max_records * RECORD_BYTES - len(self._pending)
        data = self._file.read(want) if want > 0 else b""
        if self._pending:
            data = self._pending + data
        complete = len(data) // RECORD_BYTES
        cut = complete * RECORD_BYTES
        self._pending = data[cut:]
        self.records_read += complete
        return np.frombuffer(data[:cut], dtype=RECORD_DTYPE)

    def seek_record(self, index: int) -> None:
        """Position the block interface at record ``index`` (0-based) —
        the recovery path: resume tailing from a checkpointed position."""
        if index < 0:
            raise TraceFormatError(f"record index must be >= 0, got {index}")
        self._file.seek(HEADER_BYTES + index * RECORD_BYTES)
        self._pending = b""
        self.records_read = index

    def close(self) -> None:
        """Close the underlying file."""
        self._file.close()

    def __enter__(self) -> "PacketRecordReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_pcaplite(trace: Trace, path: "str | os.PathLike[str]") -> int:
    """Dump a columnar trace as pcap-lite records; returns records written."""
    with PacketRecordWriter(path) as writer:
        tuples = [trace.flows.five_tuple(i) for i in range(trace.num_flows)]
        timestamps = trace.timestamps.tolist()
        flow_ids = trace.flow_ids.tolist()
        sizes = trace.sizes.tolist()
        for p in range(trace.num_packets):
            writer.write(timestamps[p], tuples[flow_ids[p]], sizes[p])
        return writer.records_written


def read_pcaplite(
    path: "str | os.PathLike[str]", hash_seed: int = 0
) -> Trace:
    """Load a pcap-lite file into a columnar trace.

    Flows are rebuilt by deduplicating 5-tuples in arrival order, so the
    round trip preserves ground truth exactly (flow indices may differ).
    """
    timestamps: "list[float]" = []
    flow_ids: "list[int]" = []
    sizes: "list[int]" = []
    index_of: "dict[FiveTuple, int]" = {}
    tuples: "list[FiveTuple]" = []
    with PacketRecordReader(path) as reader:
        for ts, five_tuple, size in reader:
            flow = index_of.get(five_tuple)
            if flow is None:
                flow = len(tuples)
                index_of[five_tuple] = flow
                tuples.append(five_tuple)
            timestamps.append(ts)
            flow_ids.append(flow)
            sizes.append(size)
    return Trace(
        timestamps=np.asarray(timestamps),
        flow_ids=np.asarray(flow_ids, dtype=np.int64),
        sizes=np.asarray(sizes, dtype=np.int64),
        flows=FlowTable.from_five_tuples(tuples, hash_seed=hash_seed),
    )
