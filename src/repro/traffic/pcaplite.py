"""pcap-lite: a streaming fixed-record packet format.

The NPZ trace format (:mod:`repro.traffic.trace_io`) is columnar and must
be materialized whole.  Long captures — the paper records "5-tuple, the
packet size and the timestamp of every single packet" for 113 hours onto a
4 TB disk — want an appendable, streamable format instead.  pcap-lite is
that: a 16-byte header followed by fixed 24-byte records::

    timestamp  f64   (seconds)
    src_ip     u32
    dst_ip     u32
    src_port   u16
    dst_port   u16
    protocol   u8
    (pad)      u8    (zero)
    size       u16   (wire bytes)

Little-endian throughout.  The reader streams records without loading the
file; converters bridge to/from the columnar :class:`Trace`.
"""

from __future__ import annotations

import os
import struct
from typing import Iterator

import numpy as np

from repro.errors import TraceFormatError
from repro.traffic.packet import FiveTuple, FlowTable, Trace

MAGIC = b"IMPL"
FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sHH8x")  # magic, version, reserved, pad to 16
_RECORD = struct.Struct("<dIIHHBxH")
RECORD_BYTES = _RECORD.size


class PacketRecordWriter:
    """Streaming pcap-lite writer (context manager)."""

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self._file = open(path, "wb")
        self._file.write(_HEADER.pack(MAGIC, FORMAT_VERSION, 0))
        self.records_written = 0

    def write(self, timestamp: float, five_tuple: FiveTuple, size: int) -> None:
        """Append one packet record."""
        self._file.write(
            _RECORD.pack(
                timestamp,
                five_tuple.src_ip,
                five_tuple.dst_ip,
                five_tuple.src_port,
                five_tuple.dst_port,
                five_tuple.protocol,
                size,
            )
        )
        self.records_written += 1

    def close(self) -> None:
        """Close the underlying file."""
        self._file.close()

    def __enter__(self) -> "PacketRecordWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PacketRecordReader:
    """Streaming pcap-lite reader: iterates (timestamp, FiveTuple, size)."""

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = os.fspath(path)
        try:
            self._file = open(path, "rb")
        except OSError as exc:
            raise TraceFormatError(f"cannot open {path!r}: {exc}") from exc
        header = self._file.read(_HEADER.size)
        if len(header) != _HEADER.size:
            self._file.close()
            raise TraceFormatError(f"{path!r}: truncated pcap-lite header")
        magic, version, _reserved = _HEADER.unpack(header)
        if magic != MAGIC:
            self._file.close()
            raise TraceFormatError(f"{path!r}: not a pcap-lite file")
        if version != FORMAT_VERSION:
            self._file.close()
            raise TraceFormatError(
                f"{path!r}: pcap-lite version {version}, expected {FORMAT_VERSION}"
            )

    def __iter__(self) -> Iterator["tuple[float, FiveTuple, int]"]:
        while True:
            chunk = self._file.read(RECORD_BYTES)
            if not chunk:
                return
            if len(chunk) != RECORD_BYTES:
                raise TraceFormatError(f"{self.path!r}: truncated record")
            (ts, src_ip, dst_ip, src_port, dst_port, proto, size) = _RECORD.unpack(
                chunk
            )
            yield ts, FiveTuple(src_ip, dst_ip, src_port, dst_port, proto), size

    def close(self) -> None:
        """Close the underlying file."""
        self._file.close()

    def __enter__(self) -> "PacketRecordReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_pcaplite(trace: Trace, path: "str | os.PathLike[str]") -> int:
    """Dump a columnar trace as pcap-lite records; returns records written."""
    with PacketRecordWriter(path) as writer:
        tuples = [trace.flows.five_tuple(i) for i in range(trace.num_flows)]
        timestamps = trace.timestamps.tolist()
        flow_ids = trace.flow_ids.tolist()
        sizes = trace.sizes.tolist()
        for p in range(trace.num_packets):
            writer.write(timestamps[p], tuples[flow_ids[p]], sizes[p])
        return writer.records_written


def read_pcaplite(
    path: "str | os.PathLike[str]", hash_seed: int = 0
) -> Trace:
    """Load a pcap-lite file into a columnar trace.

    Flows are rebuilt by deduplicating 5-tuples in arrival order, so the
    round trip preserves ground truth exactly (flow indices may differ).
    """
    timestamps: "list[float]" = []
    flow_ids: "list[int]" = []
    sizes: "list[int]" = []
    index_of: "dict[FiveTuple, int]" = {}
    tuples: "list[FiveTuple]" = []
    with PacketRecordReader(path) as reader:
        for ts, five_tuple, size in reader:
            flow = index_of.get(five_tuple)
            if flow is None:
                flow = len(tuples)
                index_of[five_tuple] = flow
                tuples.append(five_tuple)
            timestamps.append(ts)
            flow_ids.append(flow)
            sizes.append(size)
    return Trace(
        timestamps=np.asarray(timestamps),
        flow_ids=np.asarray(flow_ids, dtype=np.int64),
        sizes=np.asarray(sizes, dtype=np.int64),
        flows=FlowTable.from_five_tuples(tuples, hash_seed=hash_seed),
    )
