"""Flow and packet representations.

A measurement point sees a stream of packets; each packet belongs to an L4
flow identified by its 5-tuple (source/destination IP and port, protocol) —
the same granularity the paper measures.  For speed, traces are columnar:
per-packet numpy arrays indexed into a :class:`FlowTable` of distinct flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing import hash_u64, hash_u64_array

PROTO_TCP = 6
PROTO_UDP = 17
PROTO_ICMP = 1


class FiveTuple(NamedTuple):
    """An L4 flow identifier (the paper's 104-bit 5-tuple)."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int

    def packed(self) -> int:
        """Pack into the paper's 104-bit layout (32+32+16+16+8 bits)."""
        return (
            (self.src_ip & 0xFFFFFFFF) << 72
            | (self.dst_ip & 0xFFFFFFFF) << 40
            | (self.src_port & 0xFFFF) << 24
            | (self.dst_port & 0xFFFF) << 8
            | (self.protocol & 0xFF)
        )

    def key64(self, seed: int = 0) -> int:
        """Stable 64-bit hash of the packed 5-tuple."""
        packed = self.packed()
        return hash_u64(packed ^ (packed >> 64), seed)

    @classmethod
    def unpack(cls, packed: int) -> "FiveTuple":
        """Inverse of :meth:`packed`."""
        return cls(
            src_ip=(packed >> 72) & 0xFFFFFFFF,
            dst_ip=(packed >> 40) & 0xFFFFFFFF,
            src_port=(packed >> 24) & 0xFFFF,
            dst_port=(packed >> 8) & 0xFFFF,
            protocol=packed & 0xFF,
        )


class FlowTable:
    """The distinct flows of a trace, stored columnar.

    ``key64`` is precomputed per flow so per-packet processing never hashes a
    5-tuple twice (the real system computes one hash per packet; we hoist it
    per flow because a trace already carries flow indices).
    """

    def __init__(
        self,
        src_ip: np.ndarray,
        dst_ip: np.ndarray,
        src_port: np.ndarray,
        dst_port: np.ndarray,
        protocol: np.ndarray,
        hash_seed: int = 0,
    ) -> None:
        arrays = (src_ip, dst_ip, src_port, dst_port, protocol)
        lengths = {len(a) for a in arrays}
        if len(lengths) != 1:
            raise ConfigurationError(f"flow columns disagree on length: {lengths}")
        self.src_ip = np.ascontiguousarray(src_ip, dtype=np.uint32)
        self.dst_ip = np.ascontiguousarray(dst_ip, dtype=np.uint32)
        self.src_port = np.ascontiguousarray(src_port, dtype=np.uint16)
        self.dst_port = np.ascontiguousarray(dst_port, dtype=np.uint16)
        self.protocol = np.ascontiguousarray(protocol, dtype=np.uint8)
        self.hash_seed = hash_seed
        self.key64 = self._compute_keys()
        self._packed_tuples: "list[int] | None" = None

    def _compute_keys(self) -> np.ndarray:
        # Vectorized equivalent of FiveTuple.key64: fold the 104-bit packed
        # tuple to 64 bits (low64 ^ high40), then the seeded mixer.
        src = self.src_ip.astype(np.uint64)
        dst = self.dst_ip.astype(np.uint64)
        high40 = ((src << np.uint64(8)) | (dst >> np.uint64(24))) & np.uint64(
            (1 << 40) - 1
        )
        low64 = (
            ((dst & np.uint64(0xFFFFFF)) << np.uint64(40))
            | (self.src_port.astype(np.uint64) << np.uint64(24))
            | (self.dst_port.astype(np.uint64) << np.uint64(8))
            | self.protocol.astype(np.uint64)
        )
        return hash_u64_array(low64 ^ high40, self.hash_seed)

    def __len__(self) -> int:
        return len(self.src_ip)

    def five_tuple(self, index: int) -> FiveTuple:
        """Materialize the ``index``-th flow's 5-tuple."""
        return FiveTuple(
            src_ip=int(self.src_ip[index]),
            dst_ip=int(self.dst_ip[index]),
            src_port=int(self.src_port[index]),
            dst_port=int(self.dst_port[index]),
            protocol=int(self.protocol[index]),
        )

    def packed_tuples(self) -> "list[int]":
        """Per-flow 104-bit packed 5-tuples (:meth:`FiveTuple.packed`).

        Computed lazily and cached on the table: engines store these in
        WSAF records on every insertion, and a trace is typically processed
        many times (sweeps, repeated engines), so the list comprehension
        should run once per flow table, not once per run.
        """
        if self._packed_tuples is None:
            src = self.src_ip.tolist()
            dst = self.dst_ip.tolist()
            sport = self.src_port.tolist()
            dport = self.dst_port.tolist()
            proto = self.protocol.tolist()
            self._packed_tuples = [
                src[i] << 72
                | dst[i] << 40
                | sport[i] << 24
                | dport[i] << 8
                | proto[i]
                for i in range(len(src))
            ]
        return self._packed_tuples

    def __iter__(self) -> Iterator[FiveTuple]:
        for index in range(len(self)):
            yield self.five_tuple(index)

    @classmethod
    def from_five_tuples(
        cls, tuples: "list[FiveTuple]", hash_seed: int = 0
    ) -> "FlowTable":
        """Build a table from a list of 5-tuples."""
        if tuples:
            columns = list(zip(*tuples))
        else:
            columns = [[], [], [], [], []]
        return cls(
            src_ip=np.asarray(columns[0], dtype=np.uint32),
            dst_ip=np.asarray(columns[1], dtype=np.uint32),
            src_port=np.asarray(columns[2], dtype=np.uint16),
            dst_port=np.asarray(columns[3], dtype=np.uint16),
            protocol=np.asarray(columns[4], dtype=np.uint8),
            hash_seed=hash_seed,
        )


@dataclass
class Trace:
    """A packet trace: parallel per-packet columns plus the flow table.

    Attributes:
        timestamps: packet arrival times in seconds, nondecreasing.
        flow_ids: per-packet index into ``flows``.
        sizes: per-packet wire sizes in bytes.
        flows: the distinct flows of the trace.
    """

    timestamps: np.ndarray
    flow_ids: np.ndarray
    sizes: np.ndarray
    flows: FlowTable

    def __post_init__(self) -> None:
        self.timestamps = np.ascontiguousarray(self.timestamps, dtype=np.float64)
        self.flow_ids = np.ascontiguousarray(self.flow_ids, dtype=np.int64)
        self.sizes = np.ascontiguousarray(self.sizes, dtype=np.int64)
        if not (len(self.timestamps) == len(self.flow_ids) == len(self.sizes)):
            raise ConfigurationError("packet columns disagree on length")
        if len(self.flow_ids) and (
            self.flow_ids.min() < 0 or self.flow_ids.max() >= len(self.flows)
        ):
            raise ConfigurationError("flow_ids reference flows outside the table")
        if len(self.timestamps) > 1 and np.any(np.diff(self.timestamps) < 0):
            raise ConfigurationError("timestamps must be nondecreasing")

    @property
    def num_packets(self) -> int:
        return len(self.timestamps)

    @property
    def num_flows(self) -> int:
        return len(self.flows)

    @property
    def duration(self) -> float:
        """Trace span in seconds (0.0 for an empty trace)."""
        if self.num_packets == 0:
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])

    @property
    def total_bytes(self) -> int:
        return int(self.sizes.sum())

    def mean_pps(self) -> float:
        """Average packets per second over the trace span."""
        duration = self.duration
        if duration <= 0.0:
            return 0.0
        return self.num_packets / duration

    def ground_truth_packets(self) -> np.ndarray:
        """Exact per-flow packet counts (index-aligned with ``flows``)."""
        return np.bincount(self.flow_ids, minlength=self.num_flows)

    def ground_truth_bytes(self) -> np.ndarray:
        """Exact per-flow byte counts (index-aligned with ``flows``)."""
        return np.bincount(
            self.flow_ids, weights=self.sizes, minlength=self.num_flows
        ).astype(np.int64)

    def time_slice(self, start: float, end: float) -> "Trace":
        """Packets with ``start <= timestamp < end`` (flow table shared)."""
        lo = int(np.searchsorted(self.timestamps, start, side="left"))
        hi = int(np.searchsorted(self.timestamps, end, side="left"))
        return Trace(
            timestamps=self.timestamps[lo:hi].copy(),
            flow_ids=self.flow_ids[lo:hi].copy(),
            sizes=self.sizes[lo:hi].copy(),
            flows=self.flows,
        )

    def packets_per_bucket(self, bucket_seconds: float) -> "tuple[np.ndarray, np.ndarray]":
        """(bucket start times, packet counts) over fixed-width time buckets."""
        if self.num_packets == 0:
            return np.array([]), np.array([], dtype=np.int64)
        start = self.timestamps[0]
        offsets = ((self.timestamps - start) / bucket_seconds).astype(np.int64)
        counts = np.bincount(offsets)
        starts = start + bucket_seconds * np.arange(len(counts))
        return starts, counts

    def bytes_per_bucket(self, bucket_seconds: float) -> "tuple[np.ndarray, np.ndarray]":
        """(bucket start times, byte volumes) over fixed-width time buckets."""
        if self.num_packets == 0:
            return np.array([]), np.array([], dtype=np.int64)
        start = self.timestamps[0]
        offsets = ((self.timestamps - start) / bucket_seconds).astype(np.int64)
        volumes = np.bincount(offsets, weights=self.sizes).astype(np.int64)
        starts = start + bucket_seconds * np.arange(len(volumes))
        return starts, volumes
