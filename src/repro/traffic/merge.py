"""Trace merging.

The paper merges the two directions of the CAIDA link "in the order of
timestamp to evaluate InstaMeasure with larger-scale network trace"
(Section V-A).  :func:`merge_traces` is that operation: it concatenates the
flow tables (optionally deduplicating identical 5-tuples) and interleaves
the packet columns by timestamp.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.packet import FlowTable, Trace


def _concatenate_flow_tables(
    a: FlowTable, b: FlowTable, deduplicate: bool
) -> "tuple[FlowTable, np.ndarray]":
    """Append ``b``'s flows to ``a``'s.

    Returns:
        (combined table, remap array of length ``len(b)`` giving each
        b-flow's index in the combined table).
    """
    if a.hash_seed != b.hash_seed:
        raise ConfigurationError(
            "cannot merge traces with different measurement hash seeds "
            f"({a.hash_seed} vs {b.hash_seed})"
        )
    if not deduplicate:
        combined = FlowTable(
            src_ip=np.concatenate([a.src_ip, b.src_ip]),
            dst_ip=np.concatenate([a.dst_ip, b.dst_ip]),
            src_port=np.concatenate([a.src_port, b.src_port]),
            dst_port=np.concatenate([a.dst_port, b.dst_port]),
            protocol=np.concatenate([a.protocol, b.protocol]),
            hash_seed=a.hash_seed,
        )
        remap = np.arange(len(a), len(a) + len(b), dtype=np.int64)
        return combined, remap

    index_of: "dict[tuple[int, int, int, int, int], int]" = {
        tuple(flow): i for i, flow in enumerate(a)
    }
    extra: "list[tuple[int, int, int, int, int]]" = []
    remap = np.empty(len(b), dtype=np.int64)
    for i, flow in enumerate(b):
        key = tuple(flow)
        existing = index_of.get(key)
        if existing is None:
            existing = len(a) + len(extra)
            index_of[key] = existing
            extra.append(key)
        remap[i] = existing
    if extra:
        columns = list(zip(*extra))
    else:
        columns = [[], [], [], [], []]
    combined = FlowTable(
        src_ip=np.concatenate([a.src_ip, np.asarray(columns[0], dtype=np.uint32)]),
        dst_ip=np.concatenate([a.dst_ip, np.asarray(columns[1], dtype=np.uint32)]),
        src_port=np.concatenate([a.src_port, np.asarray(columns[2], dtype=np.uint16)]),
        dst_port=np.concatenate([a.dst_port, np.asarray(columns[3], dtype=np.uint16)]),
        protocol=np.concatenate([a.protocol, np.asarray(columns[4], dtype=np.uint8)]),
        hash_seed=a.hash_seed,
    )
    return combined, remap


def merge_traces(a: Trace, b: Trace, deduplicate: bool = False) -> Trace:
    """Interleave two traces by timestamp.

    Args:
        a, b: traces to merge (must share the measurement hash seed).
        deduplicate: when True, flows with identical 5-tuples in both traces
            become a single flow in the result (the right choice when merging
            the two directions of one capture); when False, all flows stay
            distinct.
    """
    flows, remap = _concatenate_flow_tables(a.flows, b.flows, deduplicate)
    timestamps = np.concatenate([a.timestamps, b.timestamps])
    flow_ids = np.concatenate([a.flow_ids, remap[b.flow_ids]])
    sizes = np.concatenate([a.sizes, b.sizes])
    order = np.argsort(timestamps, kind="stable")
    return Trace(
        timestamps=timestamps[order],
        flow_ids=flow_ids[order],
        sizes=sizes[order],
        flows=flows,
    )
