"""Traffic substrate: flows, packets, synthetic traces, trace IO.

The paper evaluates on two datasets we cannot ship (the 2016 CAIDA
Equinix-Chicago trace and a 113-hour campus gateway capture), so this package
provides faithful synthetic stand-ins:

* :class:`~repro.traffic.synth.CaidaLikeConfig` /
  :func:`~repro.traffic.synth.build_caida_like_trace` — a Zipf-sized,
  mice-dominated internet-mix trace.
* :class:`~repro.traffic.campus.CampusConfig` /
  :func:`~repro.traffic.campus.build_campus_trace` — a diurnal long-run
  campus-gateway trace.
* :class:`~repro.traffic.attack.AttackConfig` /
  :func:`~repro.traffic.attack.inject_attack_flows` — constant-rate heavy
  flows for the detection-latency experiment.

Traces are columnar (:class:`~repro.traffic.packet.Trace`): parallel numpy
arrays over packets plus a :class:`~repro.traffic.packet.FlowTable` of
5-tuples, which keeps million-packet experiments fast in pure Python.
"""

from repro.traffic.packet import FiveTuple, FlowTable, Trace
from repro.traffic.zipf import ZipfFlowSizes, zipf_sizes
from repro.traffic.synth import CaidaLikeConfig, build_caida_like_trace
from repro.traffic.campus import CampusConfig, build_campus_trace
from repro.traffic.attack import AttackConfig, inject_attack_flows
from repro.traffic.merge import merge_traces
from repro.traffic.trace_io import load_trace, save_trace
from repro.traffic.pcaplite import (
    PacketRecordReader,
    PacketRecordWriter,
    read_pcaplite,
    write_pcaplite,
)
from repro.traffic.replay import loop, restrict_flows, scale_rate, thin
from repro.traffic.stats import TraceSummary, fit_zipf_exponent, summarize_trace

__all__ = [
    "AttackConfig",
    "CaidaLikeConfig",
    "CampusConfig",
    "FiveTuple",
    "FlowTable",
    "PacketRecordReader",
    "PacketRecordWriter",
    "Trace",
    "read_pcaplite",
    "write_pcaplite",
    "TraceSummary",
    "ZipfFlowSizes",
    "build_caida_like_trace",
    "build_campus_trace",
    "fit_zipf_exponent",
    "inject_attack_flows",
    "load_trace",
    "loop",
    "merge_traces",
    "restrict_flows",
    "scale_rate",
    "thin",
    "save_trace",
    "summarize_trace",
    "zipf_sizes",
]
