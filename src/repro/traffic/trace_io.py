"""Trace persistence.

Traces are stored as compressed NPZ archives with an explicit format version
so experiments can cache expensive synthetic traces on disk.  The format is
columnar and loss-free: per-packet columns plus the flow-table columns and
the measurement hash seed.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import TraceFormatError
from repro.traffic.packet import FlowTable, Trace

FORMAT_VERSION = 1

_REQUIRED_KEYS = (
    "version",
    "timestamps",
    "flow_ids",
    "sizes",
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "protocol",
    "hash_seed",
)


def save_trace(trace: Trace, path: "str | os.PathLike[str]") -> None:
    """Write ``trace`` to ``path`` as a compressed NPZ archive."""
    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        timestamps=trace.timestamps,
        flow_ids=trace.flow_ids,
        sizes=trace.sizes,
        src_ip=trace.flows.src_ip,
        dst_ip=trace.flows.dst_ip,
        src_port=trace.flows.src_port,
        dst_port=trace.flows.dst_port,
        protocol=trace.flows.protocol,
        hash_seed=np.int64(trace.flows.hash_seed),
    )


def load_trace(path: "str | os.PathLike[str]") -> Trace:
    """Read a trace written by :func:`save_trace`.

    Raises:
        TraceFormatError: if the archive is missing columns or was written
            by an incompatible format version.
    """
    try:
        archive = np.load(path)
    except (OSError, ValueError) as exc:
        raise TraceFormatError(f"cannot read trace archive {path!r}: {exc}") from exc
    with archive:
        missing = [key for key in _REQUIRED_KEYS if key not in archive]
        if missing:
            raise TraceFormatError(f"trace archive {path!r} missing keys {missing}")
        version = int(archive["version"])
        if version != FORMAT_VERSION:
            raise TraceFormatError(
                f"trace archive {path!r} has format version {version}, "
                f"expected {FORMAT_VERSION}"
            )
        flows = FlowTable(
            src_ip=archive["src_ip"],
            dst_ip=archive["dst_ip"],
            src_port=archive["src_port"],
            dst_port=archive["dst_port"],
            protocol=archive["protocol"],
            hash_seed=int(archive["hash_seed"]),
        )
        return Trace(
            timestamps=archive["timestamps"],
            flow_ids=archive["flow_ids"],
            sizes=archive["sizes"],
            flows=flows,
        )
