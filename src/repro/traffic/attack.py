"""Heavy-flow (attack) injection for the detection-latency experiment.

Figure 9(b) measures heavy-hitter detection latency by pointing a traffic
generator at the InstaMeasure device at 10-200 kpps.  This module reproduces
that setup in trace space: it synthesizes constant-rate flows and merges
them into background traffic, returning the indices of the injected flows so
an experiment can score detection time against the known onset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.merge import merge_traces
from repro.traffic.packet import PROTO_UDP, FlowTable, Trace


@dataclass
class AttackConfig:
    """Parameters of one injected constant-rate flow set.

    Attributes:
        rates_pps: packet rate of each injected flow (one flow per entry).
        start_time: onset of every injected flow, in trace seconds.
        duration: how long each flow transmits.
        packet_size: fixed wire size of attack packets (bytes).
        seed: rng seed for tuple synthesis and arrival jitter.
    """

    rates_pps: "list[float]" = field(default_factory=lambda: [10_000.0])
    start_time: float = 0.0
    duration: float = 1.0
    packet_size: int = 512
    seed: int = 7

    def validate(self) -> None:
        """Raise ConfigurationError on invalid parameter combinations."""
        if not self.rates_pps:
            raise ConfigurationError("rates_pps must not be empty")
        if any(rate <= 0 for rate in self.rates_pps):
            raise ConfigurationError("attack rates must be positive")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.packet_size <= 0:
            raise ConfigurationError("packet_size must be positive")


def build_attack_trace(config: AttackConfig, hash_seed: int = 0) -> Trace:
    """A trace containing only the injected flows (no background)."""
    config.validate()
    rng = np.random.default_rng(config.seed)
    num_flows = len(config.rates_pps)

    src_ip = rng.integers(0, 1 << 32, size=num_flows, dtype=np.uint32)
    dst_ip = rng.integers(0, 1 << 32, size=num_flows, dtype=np.uint32)
    src_port = rng.integers(1024, 1 << 16, size=num_flows, dtype=np.uint16)
    dst_port = np.full(num_flows, 80, dtype=np.uint16)
    protocol = np.full(num_flows, PROTO_UDP, dtype=np.uint8)
    flows = FlowTable(src_ip, dst_ip, src_port, dst_port, protocol, hash_seed=hash_seed)

    all_ts: "list[np.ndarray]" = []
    all_ids: "list[np.ndarray]" = []
    for index, rate in enumerate(config.rates_pps):
        count = max(1, int(round(rate * config.duration)))
        # Poisson arrivals at the configured mean rate.
        gaps = rng.exponential(1.0 / rate, size=count)
        ts = config.start_time + np.cumsum(gaps)
        all_ts.append(ts)
        all_ids.append(np.full(count, index, dtype=np.int64))

    timestamps = np.concatenate(all_ts)
    flow_ids = np.concatenate(all_ids)
    order = np.argsort(timestamps, kind="stable")
    sizes = np.full(len(timestamps), config.packet_size, dtype=np.int64)
    return Trace(
        timestamps=timestamps[order],
        flow_ids=flow_ids[order],
        sizes=sizes,
        flows=flows,
    )


def inject_attack_flows(
    background: Trace, config: AttackConfig
) -> "tuple[Trace, list[int]]":
    """Merge constant-rate flows into ``background``.

    Returns:
        (merged trace, indices of the injected flows in the merged flow
        table — in the same order as ``config.rates_pps``).
    """
    attack = build_attack_trace(config, hash_seed=background.flows.hash_seed)
    merged = merge_traces(background, attack)
    first_injected = len(background.flows)
    injected = list(range(first_injected, first_injected + len(attack.flows)))
    return merged, injected
