"""Key-range sharding over the regulator's placement-hash space.

A :class:`ShardRouter` partitions the L1 word-index space ``[0,
num_words)`` into ``num_shards`` contiguous ranges and assigns each flow
to the shard owning its placement word (``hash(key64) % num_words`` via
the :mod:`repro.hashing` layer, exactly the hash the sketches use).

Partitioning on *words* rather than raw keys is what makes sharded
ingestion exact: every flow that shares an L1 word — and therefore
interferes inside the regulator — lands in the same shard, so each
shard's full-size, same-seed regulator evolves its words precisely as a
single-process run would, and the merged word arrays OR together
losslessly (see :func:`repro.state.merge.merge`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class ShardRouter:
    """Contiguous word-range partitioner.

    Args:
        num_shards: shard count, >= 1 (and <= ``num_words`` — emptier
            shards than words cannot be balanced).
        num_words: size of the L1 word-index space being partitioned.
        place: callable mapping a ``uint64`` key array to word indices —
            normally an :meth:`RCCSketch.place_array`-derived function.
            Use :meth:`for_config` to build one from an engine config.
    """

    def __init__(self, num_shards: int, num_words: int, place) -> None:
        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        if num_words < num_shards:
            raise ConfigurationError(
                f"cannot split {num_words} words into {num_shards} shards"
            )
        self.num_shards = num_shards
        self.num_words = num_words
        self._place = place
        #: Range boundaries: shard s owns words [bounds[s], bounds[s+1]).
        self.bounds = np.array(
            [round(s * num_words / num_shards) for s in range(num_shards + 1)],
            dtype=np.int64,
        )

    @classmethod
    def for_config(cls, config, num_shards: int) -> "ShardRouter":
        """Build a router matching ``config``'s L1 placement exactly."""
        from repro.core.rcc import RCCSketch

        sketch = RCCSketch(
            config.l1_memory_bytes,
            vector_bits=config.vector_bits,
            word_bits=config.word_bits,
            saturation_fill=config.saturation_fill,
            seed=config.seed,
        )

        def place(keys: np.ndarray) -> np.ndarray:
            indices, _offsets = sketch.place_array(keys)
            return indices

        return cls(num_shards, sketch.num_words, place)

    def key_range(self, shard: int) -> "tuple[int, int]":
        """The word-index range ``[lo, hi)`` owned by ``shard``."""
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(
                f"shard must be in [0, {self.num_shards}), got {shard}"
            )
        return int(self.bounds[shard]), int(self.bounds[shard + 1])

    def shard_of_words(self, word_indices: np.ndarray) -> np.ndarray:
        """Shard id of each word index."""
        return (
            np.searchsorted(self.bounds, word_indices, side="right") - 1
        ).astype(np.int64)

    def shard_of_keys(self, flow_keys: np.ndarray) -> np.ndarray:
        """Shard id of each ``uint64`` flow key."""
        return self.shard_of_words(self._place(flow_keys))

    def assignments(self, trace) -> np.ndarray:
        """Per-packet shard ids for ``trace`` (via its flow table)."""
        return self.shard_of_keys(trace.flows.key64)[trace.flow_ids]
