"""Key-range sharding over the regulator's placement-hash space.

A :class:`ShardRouter` partitions the L1 word-index space ``[0,
num_words)`` into ``num_shards`` contiguous ranges and assigns each flow
to the shard owning its placement word (``hash(key64) % num_words`` via
the :mod:`repro.hashing` layer, exactly the hash the sketches use).

Partitioning on *words* rather than raw keys is what makes sharded
ingestion exact: every flow that shares an L1 word — and therefore
interferes inside the regulator — lands in the same shard, so each
shard's full-size, same-seed regulator evolves its words precisely as a
single-process run would, and the merged word arrays OR together
losslessly (see :func:`repro.state.merge.merge`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class ShardRouter:
    """Contiguous word-range partitioner.

    Args:
        num_shards: shard count, >= 1 (and <= ``num_words`` — emptier
            shards than words cannot be balanced).
        num_words: size of the L1 word-index space being partitioned.
        place: callable mapping a ``uint64`` key array to word indices —
            normally an :meth:`RCCSketch.place_array`-derived function.
            Use :meth:`for_config` to build one from an engine config.
    """

    def __init__(
        self, num_shards: int, num_words: int, place, cache_token=None
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        if num_words < num_shards:
            raise ConfigurationError(
                f"cannot split {num_words} words into {num_shards} shards"
            )
        self.num_shards = num_shards
        self.num_words = num_words
        self._place = place
        #: Hashable identity of this router's routing function.  Two
        #: routers with equal tokens route identically, so cached split
        #: results (pinned on trace/flow objects) can be shared across
        #: router instances — repeated benchmark runs with fresh
        #: pipelines still hit warm routing and warm kernel caches.
        #: ``None`` falls back to object identity (hand-built routers).
        self.cache_token = (
            (num_shards, num_words, cache_token)
            if cache_token is not None
            else (num_shards, num_words, id(self))
        )
        #: Range boundaries: shard s owns words [bounds[s], bounds[s+1]).
        self.bounds = np.array(
            [round(s * num_words / num_shards) for s in range(num_shards + 1)],
            dtype=np.int64,
        )

    @classmethod
    def for_config(cls, config, num_shards: int) -> "ShardRouter":
        """Build a router matching ``config``'s L1 placement exactly."""
        from repro.core.rcc import RCCSketch

        sketch = RCCSketch(
            config.l1_memory_bytes,
            vector_bits=config.vector_bits,
            word_bits=config.word_bits,
            saturation_fill=config.saturation_fill,
            seed=config.seed,
        )

        def place(keys: np.ndarray) -> np.ndarray:
            indices, _offsets = sketch.place_array(keys)
            return indices

        # Placement depends only on the sketch geometry + seed, so the
        # token captures exactly those knobs.
        token = (
            config.l1_memory_bytes,
            config.vector_bits,
            config.word_bits,
            config.saturation_fill,
            config.seed,
        )
        return cls(num_shards, sketch.num_words, place, cache_token=token)

    def key_range(self, shard: int) -> "tuple[int, int]":
        """The word-index range ``[lo, hi)`` owned by ``shard``."""
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(
                f"shard must be in [0, {self.num_shards}), got {shard}"
            )
        return int(self.bounds[shard]), int(self.bounds[shard + 1])

    def shard_of_words(self, word_indices: np.ndarray) -> np.ndarray:
        """Shard id of each word index."""
        return (
            np.searchsorted(self.bounds, word_indices, side="right") - 1
        ).astype(np.int64)

    def shard_of_keys(self, flow_keys: np.ndarray) -> np.ndarray:
        """Shard id of each ``uint64`` flow key."""
        return self.shard_of_words(self._place(flow_keys))

    def assignments(self, trace) -> np.ndarray:
        """Per-packet shard ids for ``trace`` (via its flow table)."""
        return self.flow_shards(trace.flows)[trace.flow_ids]

    def flow_shards(self, flows) -> np.ndarray:
        """Per-flow shard ids for a flow table, cached on the table.

        Every chunk of a stream shares one flow table, so the placement
        hash runs once per (table, routing function), not once per chunk.
        """
        cache = getattr(flows, "_shard_flow_cache", None)
        if cache is not None and cache[0] == self.cache_token:
            return cache[1]
        shards = self.shard_of_keys(flows.key64)
        try:
            flows._shard_flow_cache = (self.cache_token, shards)
        except AttributeError:
            pass  # exotic flow tables without a __dict__ just re-route
        return shards

    def split_chunk(self, chunk) -> "list[tuple]":
        """Route one pipeline chunk: per-shard sub-traces + global positions.

        Returns ``[(sub_trace, positions), ...]``, one entry per shard, in
        shard order.  ``sub_trace`` holds the shard's packets of this chunk
        in their original (global time) order, sharing the chunk's flow
        table; ``positions`` are those packets' global bit-stream positions
        (``chunk.begin`` + offset within the chunk), ascending — exactly
        what :meth:`InstaMeasure.ingest` needs to gather the packets' bits
        out of the single-process draw.  Results are cached on the chunk's
        trace object keyed by the routing function *and* the chunk's
        ``begin`` (a load controller may rebase a chunk's span onto the
        kept stream without touching the trace), so repeated runs over
        one chunk source reuse both the routing work and the sub-trace
        objects (keeping per-trace kernel caches warm).
        """
        from repro.traffic.packet import Trace

        trace = chunk.trace
        begin = int(getattr(chunk, "begin", 0))
        cache = getattr(trace, "_shard_split_cache", None)
        if cache is not None and cache[0] == (self.cache_token, begin):
            return cache[1]
        assignment = self.flow_shards(trace.flows)[trace.flow_ids]
        # Stable sort by shard: within a shard, packets keep ascending
        # chunk order, so positions stay ascending and per-flow order is
        # the global one.
        order = np.argsort(assignment, kind="stable")
        counts = np.bincount(assignment, minlength=self.num_shards)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        parts: "list[tuple]" = []
        for shard in range(self.num_shards):
            index = order[offsets[shard] : offsets[shard + 1]]
            sub = Trace(
                timestamps=trace.timestamps[index],
                flow_ids=trace.flow_ids[index],
                sizes=trace.sizes[index],
                flows=trace.flows,
            )
            parts.append((sub, (begin + index).astype(np.int64)))
        try:
            trace._shard_split_cache = ((self.cache_token, begin), parts)
        except AttributeError:
            pass
        return parts
