"""Bytes/file codec for :class:`~repro.state.snapshot.MeasurementSnapshot`.

Wire layout (little-endian)::

    8 bytes   magic  b"IMSNAP\\x00\\x01"
    8 bytes   header length H (uint64)
    H bytes   JSON header (UTF-8)
    ...       raw column payloads, concatenated in manifest order

The JSON header is self-describing: a format ``version``, the snapshot's
``kind``/``config``/scalar counters, and a column ``manifest`` listing
every NumPy payload's name, dtype, and element count.  Decoders reject
unknown versions and truncated payloads outright — a snapshot is either
read back exactly or not at all.  All column dtypes are fixed-width and
endian-pinned (``<u8``/``<f8``/``|b1``), so files transfer across hosts.
"""

from __future__ import annotations

import json

import numpy as np

from repro.errors import SnapshotError
from repro.state.snapshot import (
    IceState,
    MeasurementSnapshot,
    RegulatorState,
    SketchState,
    StreamCursor,
    TierState,
    WSAFState,
)

#: File magic; the trailing byte pair doubles as a container revision.
MAGIC = b"IMSNAP\x00\x01"

#: Header schema version; bump on any incompatible layout change.
#: Optional WSAF backend sections (``tier``/``ice``) are an *additive*
#: extension of version 1: their absence is a plain flat snapshot, their
#: names are declared in the header's ``wsaf.sections`` list, and a
#: decoder that meets a section name it does not know refuses the file
#: rather than silently dropping state.
SNAPSHOT_VERSION = 1

#: WSAF backend sections this decoder understands.
_KNOWN_WSAF_SECTIONS = ("tier", "ice")


def _wire_dtype(array: np.ndarray) -> str:
    """The endian-pinned, fixed-width wire dtype for ``array``."""
    kind = array.dtype.kind
    if kind == "u":
        return "<u8"
    if kind == "i":
        return "<i8"
    if kind == "f":
        return "<f8"
    if kind == "b":
        return "|b1"
    raise SnapshotError(f"cannot serialize column dtype {array.dtype}")


def _columns_of(snapshot: MeasurementSnapshot) -> "list[tuple[str, np.ndarray]]":
    """Every NumPy payload of ``snapshot``, in canonical manifest order."""
    columns: "list[tuple[str, np.ndarray]]" = []
    for index, sketch in enumerate(snapshot.regulator.sketches):
        columns.append((f"regulator.{index}.words", sketch.words))
    wsaf = snapshot.wsaf
    columns.extend(
        [
            ("wsaf.slots", wsaf.slots),
            ("wsaf.keys", wsaf.keys),
            ("wsaf.packets", wsaf.packets),
            ("wsaf.bytes", wsaf.bytes),
            ("wsaf.timestamps", wsaf.timestamps),
            ("wsaf.chance", wsaf.chance),
            ("wsaf.tuple_lo", wsaf.tuple_lo),
            ("wsaf.tuple_hi", wsaf.tuple_hi),
            ("wsaf.tuple_present", wsaf.tuple_present),
        ]
    )
    if wsaf.tier is not None:
        tier = wsaf.tier
        columns.extend(
            [
                ("wsaf.tier.keys", tier.keys),
                ("wsaf.tier.packets", tier.packets),
                ("wsaf.tier.bytes", tier.bytes),
                ("wsaf.tier.timestamps", tier.timestamps),
                ("wsaf.tier.chance", tier.chance),
                ("wsaf.tier.tuple_lo", tier.tuple_lo),
                ("wsaf.tier.tuple_hi", tier.tuple_hi),
                ("wsaf.tier.tuple_present", tier.tuple_present),
                ("wsaf.tier.heat_keys", tier.heat_keys),
                ("wsaf.tier.heat_counts", tier.heat_counts),
            ]
        )
    if wsaf.ice is not None:
        columns.extend(
            [
                ("wsaf.ice.scale_packets", wsaf.ice.scale_packets),
                ("wsaf.ice.scale_bytes", wsaf.ice.scale_bytes),
            ]
        )
    if snapshot.stream is not None and snapshot.stream.positions is not None:
        columns.append(("stream.positions", snapshot.stream.positions))
    return columns


def _stream_header(stream) -> "dict | None":
    """JSON header entry for an in-progress stream cursor.

    The block-draw keys are emitted only for unbounded cursors, so
    known-length snapshots serialize byte-for-byte as they did before
    the service refactor (golden files stay valid).
    """
    if stream is None:
        return None
    header = {
        "offset": stream.offset,
        "total": stream.total,
        "has_positions": stream.positions is not None,
        "packets": stream.packets,
        "insertions": stream.insertions,
        "l1_saturations": stream.l1_saturations,
        "elapsed": stream.elapsed,
    }
    if stream.rng_state is not None:
        header["rng_state"] = stream.rng_state
        header["block_used"] = stream.block_used
        header["block_size"] = stream.block_size
    return header


def to_bytes(snapshot: MeasurementSnapshot) -> bytes:
    """Serialize ``snapshot`` to a self-describing byte string."""
    columns = _columns_of(snapshot)
    manifest = []
    payloads = []
    for name, array in columns:
        wire = _wire_dtype(array)
        manifest.append({"name": name, "dtype": wire, "count": int(len(array))})
        payloads.append(np.ascontiguousarray(array, dtype=wire).tobytes())

    wsaf = snapshot.wsaf
    stream = snapshot.stream
    header = {
        "version": SNAPSHOT_VERSION,
        "kind": snapshot.kind,
        "config": snapshot.config,
        "regulator": {
            "packets": snapshot.regulator.packets,
            "l1_saturations": snapshot.regulator.l1_saturations,
            "insertions": snapshot.regulator.insertions,
            "sketches": [
                {
                    "packets_encoded": sketch.packets_encoded,
                    "saturations": sketch.saturations,
                }
                for sketch in snapshot.regulator.sketches
            ],
        },
        "wsaf": {
            "num_entries": wsaf.num_entries,
            "probe_limit": wsaf.probe_limit,
            "eviction_policy": wsaf.eviction_policy,
            "size": wsaf.size,
            "insertions": wsaf.insertions,
            "updates": wsaf.updates,
            "evictions": wsaf.evictions,
            "gc_reclaimed": wsaf.gc_reclaimed,
            "rejected": wsaf.rejected,
        },
        "stream": _stream_header(stream),
        "key_range": (
            None if snapshot.key_range is None else list(snapshot.key_range)
        ),
        "shards_merged": snapshot.shards_merged,
        "extra": snapshot.extra,
        "manifest": manifest,
    }
    # Backend sections are declared only when present, so a flat snapshot's
    # header (and the files of every pre-backend build) stays section-free.
    sections = []
    if wsaf.tier is not None:
        sections.append("tier")
        header["wsaf"]["tier"] = {
            "cache_entries": wsaf.tier.cache_entries,
            "tier_interval": wsaf.tier.tier_interval,
            "op_count": wsaf.tier.op_count,
            "cache_updates": wsaf.tier.cache_updates,
            "promotions": wsaf.tier.promotions,
            "demotions": wsaf.tier.demotions,
        }
    if wsaf.ice is not None:
        sections.append("ice")
        header["wsaf"]["ice"] = {
            "bucket_slots": wsaf.ice.bucket_slots,
            "counter_bits": wsaf.ice.counter_bits,
            "upscales": wsaf.ice.upscales,
        }
    if sections:
        header["wsaf"]["sections"] = sections
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [MAGIC, len(header_bytes).to_bytes(8, "little"), header_bytes]
    parts.extend(payloads)
    return b"".join(parts)


def from_bytes(data: bytes) -> MeasurementSnapshot:
    """Decode :func:`to_bytes` output; reject foreign or damaged input."""
    if len(data) < len(MAGIC) + 8 or data[: len(MAGIC)] != MAGIC:
        raise SnapshotError("not a measurement snapshot (bad magic)")
    header_len = int.from_bytes(data[len(MAGIC) : len(MAGIC) + 8], "little")
    header_begin = len(MAGIC) + 8
    header_end = header_begin + header_len
    if header_end > len(data):
        raise SnapshotError("truncated snapshot header")
    try:
        header = json.loads(data[header_begin:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"corrupt snapshot header: {exc}") from exc
    version = header.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version!r} is not supported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )

    columns: "dict[str, np.ndarray]" = {}
    offset = header_end
    for entry in header["manifest"]:
        dtype = np.dtype(entry["dtype"])
        nbytes = dtype.itemsize * entry["count"]
        if offset + nbytes > len(data):
            raise SnapshotError(
                f"truncated snapshot payload at column {entry['name']!r}"
            )
        columns[entry["name"]] = np.frombuffer(
            data, dtype=dtype, count=entry["count"], offset=offset
        ).copy()
        offset += nbytes
    if offset != len(data):
        raise SnapshotError(
            f"{len(data) - offset} trailing bytes after the last column"
        )

    sketch_meta = header["regulator"]["sketches"]
    sketches = []
    for index, meta in enumerate(sketch_meta):
        name = f"regulator.{index}.words"
        if name not in columns:
            raise SnapshotError(f"snapshot is missing column {name!r}")
        sketches.append(
            SketchState(
                words=columns[name],
                packets_encoded=meta["packets_encoded"],
                saturations=meta["saturations"],
            )
        )
    regulator = RegulatorState(
        sketches=sketches,
        packets=header["regulator"]["packets"],
        l1_saturations=header["regulator"]["l1_saturations"],
        insertions=header["regulator"]["insertions"],
    )

    wsaf_meta = header["wsaf"]
    sections = wsaf_meta.get("sections", [])
    unknown = [name for name in sections if name not in _KNOWN_WSAF_SECTIONS]
    if unknown:
        raise SnapshotError(
            f"snapshot carries unknown WSAF section(s) {unknown!r}; "
            f"this build reads {list(_KNOWN_WSAF_SECTIONS)!r}"
        )
    tier = None
    if "tier" in sections:
        tier_meta = wsaf_meta.get("tier")
        if tier_meta is None:
            raise SnapshotError(
                "snapshot declares a 'tier' section but carries no tier header"
            )
        try:
            tier = TierState(
                cache_entries=tier_meta["cache_entries"],
                tier_interval=tier_meta["tier_interval"],
                op_count=tier_meta["op_count"],
                cache_updates=tier_meta["cache_updates"],
                promotions=tier_meta["promotions"],
                demotions=tier_meta["demotions"],
                keys=columns["wsaf.tier.keys"],
                packets=columns["wsaf.tier.packets"],
                bytes=columns["wsaf.tier.bytes"],
                timestamps=columns["wsaf.tier.timestamps"],
                chance=columns["wsaf.tier.chance"],
                tuple_lo=columns["wsaf.tier.tuple_lo"],
                tuple_hi=columns["wsaf.tier.tuple_hi"],
                tuple_present=columns["wsaf.tier.tuple_present"],
                heat_keys=columns["wsaf.tier.heat_keys"],
                heat_counts=columns["wsaf.tier.heat_counts"],
            )
        except KeyError as exc:
            raise SnapshotError(
                f"snapshot is missing tier column/field {exc}"
            ) from exc
    ice = None
    if "ice" in sections:
        ice_meta = wsaf_meta.get("ice")
        if ice_meta is None:
            raise SnapshotError(
                "snapshot declares an 'ice' section but carries no ice header"
            )
        try:
            ice = IceState(
                bucket_slots=ice_meta["bucket_slots"],
                counter_bits=ice_meta["counter_bits"],
                upscales=ice_meta["upscales"],
                scale_packets=columns["wsaf.ice.scale_packets"],
                scale_bytes=columns["wsaf.ice.scale_bytes"],
            )
        except KeyError as exc:
            raise SnapshotError(
                f"snapshot is missing ice column/field {exc}"
            ) from exc
    try:
        wsaf = WSAFState(
            num_entries=wsaf_meta["num_entries"],
            probe_limit=wsaf_meta["probe_limit"],
            eviction_policy=wsaf_meta["eviction_policy"],
            size=wsaf_meta["size"],
            insertions=wsaf_meta["insertions"],
            updates=wsaf_meta["updates"],
            evictions=wsaf_meta["evictions"],
            gc_reclaimed=wsaf_meta["gc_reclaimed"],
            rejected=wsaf_meta["rejected"],
            slots=columns["wsaf.slots"].astype(np.int64),
            keys=columns["wsaf.keys"],
            packets=columns["wsaf.packets"],
            bytes=columns["wsaf.bytes"],
            timestamps=columns["wsaf.timestamps"],
            chance=columns["wsaf.chance"],
            tuple_lo=columns["wsaf.tuple_lo"],
            tuple_hi=columns["wsaf.tuple_hi"],
            tuple_present=columns["wsaf.tuple_present"],
            tier=tier,
            ice=ice,
        )
    except KeyError as exc:
        raise SnapshotError(f"snapshot is missing WSAF column {exc}") from exc

    stream_meta = header["stream"]
    stream = None
    if stream_meta is not None:
        positions = None
        if stream_meta["has_positions"]:
            if "stream.positions" not in columns:
                raise SnapshotError("snapshot is missing column 'stream.positions'")
            positions = columns["stream.positions"].astype(np.int64)
        stream = StreamCursor(
            offset=stream_meta["offset"],
            total=stream_meta["total"],
            positions=positions,
            packets=stream_meta["packets"],
            insertions=stream_meta["insertions"],
            l1_saturations=stream_meta["l1_saturations"],
            elapsed=stream_meta["elapsed"],
            rng_state=stream_meta.get("rng_state"),
            block_used=stream_meta.get("block_used", 0),
            block_size=stream_meta.get("block_size", 0),
        )

    key_range = header.get("key_range")
    return MeasurementSnapshot(
        kind=header["kind"],
        config=header["config"],
        regulator=regulator,
        wsaf=wsaf,
        stream=stream,
        key_range=None if key_range is None else (key_range[0], key_range[1]),
        shards_merged=header.get("shards_merged", 1),
        extra=header.get("extra", {}),
    )


# -- incremental payload framing ---------------------------------------------
#
# The sharded worker pool streams routed sub-chunks to long-lived workers
# over pipes.  Those messages are not snapshots — they are small, frequent,
# and latency-sensitive — so they get their own framing: the same
# magic + JSON-header + raw-columns layout as IMSNAP, but columns keep
# their *native* dtypes (a chunk's uint8 bits or float64 timestamps ship
# as-is instead of being widened to the archival 8-byte wire types).

#: Frame magic; distinct from :data:`MAGIC` so a frame can never be
#: mistaken for a persisted snapshot (or vice versa).
FRAME_MAGIC = b"IMFRM\x00\x01"


def _frame_dtype(array: np.ndarray) -> "tuple[str, np.ndarray]":
    """``array``'s little-endian wire dtype string and wire-ready data."""
    dtype = array.dtype
    if dtype.kind not in "uifb":
        raise SnapshotError(f"cannot frame column dtype {dtype}")
    wire = dtype.newbyteorder("<") if dtype.byteorder == ">" else dtype
    return wire.str, np.ascontiguousarray(array, dtype=wire)


def pack_frame(meta: "dict", columns: "dict[str, np.ndarray]") -> bytes:
    """Serialize one IPC frame: JSON ``meta`` plus named NumPy columns."""
    manifest = []
    payloads = []
    for name, array in columns.items():
        wire, data = _frame_dtype(np.asarray(array))
        manifest.append({"name": name, "dtype": wire, "count": int(data.size)})
        payloads.append(data.tobytes())
    header = {"meta": meta, "manifest": manifest}
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [FRAME_MAGIC, len(header_bytes).to_bytes(8, "little"), header_bytes]
    parts.extend(payloads)
    return b"".join(parts)


def unpack_frame(data: bytes) -> "tuple[dict, dict[str, np.ndarray]]":
    """Decode :func:`pack_frame` output into ``(meta, columns)``."""
    if len(data) < len(FRAME_MAGIC) + 8 or data[: len(FRAME_MAGIC)] != FRAME_MAGIC:
        raise SnapshotError("not an IPC frame (bad magic)")
    header_begin = len(FRAME_MAGIC) + 8
    header_len = int.from_bytes(data[len(FRAME_MAGIC) : header_begin], "little")
    header_end = header_begin + header_len
    if header_end > len(data):
        raise SnapshotError("truncated frame header")
    try:
        header = json.loads(data[header_begin:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"corrupt frame header: {exc}") from exc
    columns: "dict[str, np.ndarray]" = {}
    offset = header_end
    for entry in header["manifest"]:
        dtype = np.dtype(entry["dtype"])
        nbytes = dtype.itemsize * entry["count"]
        if offset + nbytes > len(data):
            raise SnapshotError(
                f"truncated frame payload at column {entry['name']!r}"
            )
        columns[entry["name"]] = np.frombuffer(
            data, dtype=dtype, count=entry["count"], offset=offset
        ).copy()
        offset += nbytes
    if offset != len(data):
        raise SnapshotError(
            f"{len(data) - offset} trailing bytes after the last frame column"
        )
    return header["meta"], columns


def save(snapshot: MeasurementSnapshot, path) -> None:
    """Write ``snapshot`` to ``path`` (see :func:`to_bytes`)."""
    with open(path, "wb") as handle:
        handle.write(to_bytes(snapshot))


def load(path) -> MeasurementSnapshot:
    """Read a snapshot written by :func:`save`."""
    with open(path, "rb") as handle:
        return from_bytes(handle.read())
