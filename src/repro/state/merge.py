"""Merging measurement state — snapshots and insertion-event logs.

Two merge planes live here:

* **Snapshot merge** (:func:`merge`): fold N finalized
  :class:`~repro.state.snapshot.MeasurementSnapshot` objects into one.
  *Disjoint* key ranges (no flow key appears in two snapshots — the
  sharded pipeline's case) concatenate records and OR the regulator word
  arrays; because every input evolved its own words under the same seed
  over a disjoint word range, the OR is exact.  *Overlapping* ranges
  counter-sum per key: packet/byte totals add, ``last_update`` takes the
  max, the second-chance bit ORs, and insertion counters are reconciled
  (a key inserted in two inputs is one insertion plus one update in the
  merged view).
* **Event-log merge** (:class:`InsertionLog`, :func:`tag_events`,
  :func:`release_ordered`, :func:`apply_events`): the multi-core
  manager's deterministic in-process merge.  Workers record WSAF
  insertion events instead of applying them; the manager tags each event
  ``(timestamp, worker, sequence)``, releases the globally ordered prefix,
  and applies it through ``accumulate_batch`` — so results never depend
  on worker scheduling.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.errors import SnapshotError
from repro.state.snapshot import (
    MeasurementSnapshot,
    RegulatorState,
    SketchState,
    WSAFState,
)

#: Config fields that must match across merged snapshots: everything that
#: determines sketch geometry, placement, or WSAF policy.  Fields that only
#: affect execution strategy (engine/chunk_size/replay knobs) may differ.
#: Each field carries the default it takes when absent from a snapshot's
#: config dict, so snapshots written before a knob existed merge cleanly
#: with current ones (absent compares equal to the default).
_GEOMETRY_FIELDS = {
    "l1_memory_bytes": None,
    "num_layers": None,
    "vector_bits": None,
    "word_bits": None,
    "saturation_fill": None,
    "wsaf_entries": None,
    "probe_limit": None,
    "gc_timeout": None,
    "eviction_policy": None,
    "wsaf_backend": "flat",
    "tier_cache_entries": 256,
    "tier_interval": 1024,
    "ice_bucket_slots": 64,
    "ice_counter_bits": 16,
}


def _check_compatible(snapshots, require_seed: bool) -> None:
    first = snapshots[0]
    for other in snapshots[1:]:
        if other.kind != first.kind:
            raise SnapshotError(
                f"cannot merge snapshot kinds {first.kind!r} and {other.kind!r}"
            )
        for name, default in _GEOMETRY_FIELDS.items():
            if other.config.get(name, default) != first.config.get(
                name, default
            ):
                raise SnapshotError(
                    f"cannot merge snapshots with different {name}: "
                    f"{first.config.get(name, default)!r} vs "
                    f"{other.config.get(name, default)!r}"
                )
        if require_seed and other.config.get("seed") != first.config.get("seed"):
            raise SnapshotError(
                "disjoint-range merge requires a shared placement seed: "
                f"{first.config.get('seed')!r} vs {other.config.get('seed')!r}"
            )
        if len(other.regulator.sketches) != len(first.regulator.sketches):
            raise SnapshotError("snapshots disagree on regulator sketch count")
        if other.stream is not None or first.stream is not None:
            raise SnapshotError(
                "cannot merge snapshots with in-progress streams; "
                "finalize before merging"
            )


def _merge_regulators(snapshots) -> RegulatorState:
    """OR the word arrays, sum the counters.

    Exact for disjoint word ranges under a shared seed (each word has at
    most one writer); an approximation when inputs overlap — the counters
    stay exact, the word *contents* are a superset of any single run's.
    """
    first = snapshots[0].regulator
    sketches = []
    for index in range(len(first.sketches)):
        words = first.sketches[index].words.copy()
        encoded = first.sketches[index].packets_encoded
        saturations = first.sketches[index].saturations
        for other in snapshots[1:]:
            saved = other.regulator.sketches[index]
            if len(saved.words) != len(words):
                raise SnapshotError(
                    f"sketch {index} word counts differ: "
                    f"{len(words)} vs {len(saved.words)}"
                )
            words |= saved.words
            encoded += saved.packets_encoded
            saturations += saved.saturations
        sketches.append(
            SketchState(
                words=words, packets_encoded=encoded, saturations=saturations
            )
        )
    return RegulatorState(
        sketches=sketches,
        packets=sum(snap.regulator.packets for snap in snapshots),
        l1_saturations=sum(
            snap.regulator.l1_saturations for snap in snapshots
        ),
        insertions=sum(snap.regulator.insertions for snap in snapshots),
    )


def _flatten_wsaf(state: WSAFState) -> WSAFState:
    """Fold a backend's sections into plain flat columns.

    A tiered shard's hot-cache records concatenate after its table
    records with slot ``-1`` (they never had table slots); tiers are
    exclusive, so no key duplicates.  A compressed shard's scale section
    simply drops — the main columns already hold the dequantized values,
    and a restore into a compressed backend re-quantizes them
    (estimate-equivalent within one quantization step).  Merged snapshots
    therefore never carry sections.
    """
    if state.tier is None and state.ice is None:
        return state
    tier = state.tier
    if tier is None or tier.num_records == 0:
        return replace(state, tier=None, ice=None)
    return replace(
        state,
        tier=None,
        ice=None,
        slots=np.concatenate(
            [state.slots, np.full(tier.num_records, -1, dtype=np.int64)]
        ),
        keys=np.concatenate([state.keys, tier.keys]),
        packets=np.concatenate([state.packets, tier.packets]),
        bytes=np.concatenate([state.bytes, tier.bytes]),
        timestamps=np.concatenate([state.timestamps, tier.timestamps]),
        chance=np.concatenate([state.chance, tier.chance]),
        tuple_lo=np.concatenate([state.tuple_lo, tier.tuple_lo]),
        tuple_hi=np.concatenate([state.tuple_hi, tier.tuple_hi]),
        tuple_present=np.concatenate(
            [state.tuple_present, tier.tuple_present]
        ),
    )


def _concat_wsaf(snapshots) -> WSAFState:
    """Disjoint merge: concatenate records, sum counters, keep slots."""
    states = [_flatten_wsaf(snap.wsaf) for snap in snapshots]
    slots = np.concatenate([state.slots for state in states])
    # Two shards can legitimately claim one slot (their keys hash apart
    # but probe together); such records lose their exact placement and
    # re-probe at restore time.
    values, counts = np.unique(slots[slots >= 0], return_counts=True)
    contested = values[counts > 1]
    if contested.size:
        slots = np.where(np.isin(slots, contested), -1, slots)
    return WSAFState(
        num_entries=states[0].num_entries,
        probe_limit=states[0].probe_limit,
        eviction_policy=states[0].eviction_policy,
        size=sum(state.size for state in states),
        insertions=sum(state.insertions for state in states),
        updates=sum(state.updates for state in states),
        evictions=sum(state.evictions for state in states),
        gc_reclaimed=sum(state.gc_reclaimed for state in states),
        rejected=sum(state.rejected for state in states),
        slots=slots,
        keys=np.concatenate([state.keys for state in states]),
        packets=np.concatenate([state.packets for state in states]),
        bytes=np.concatenate([state.bytes for state in states]),
        timestamps=np.concatenate([state.timestamps for state in states]),
        chance=np.concatenate([state.chance for state in states]),
        tuple_lo=np.concatenate([state.tuple_lo for state in states]),
        tuple_hi=np.concatenate([state.tuple_hi for state in states]),
        tuple_present=np.concatenate([state.tuple_present for state in states]),
    )


def _sum_wsaf(snapshots) -> WSAFState:
    """Overlap merge: per-key counter sums with insertion reconciliation.

    Each key keeps one record: packets/bytes sum, ``last_update`` takes
    the max, the chance bit ORs, and the 5-tuple comes from the first
    input that recorded one.  Every duplicate beyond a key's first record
    was counted as an insertion by its own shard but is an *update* of
    the merged record, so ``insertions``/``updates``/``size`` shift by
    the duplicate count; eviction and GC counters sum as observed events.
    """
    states = [_flatten_wsaf(snap.wsaf) for snap in snapshots]
    keys = np.concatenate([state.keys for state in states])
    packets = np.concatenate([state.packets for state in states])
    bytes_ = np.concatenate([state.bytes for state in states])
    timestamps = np.concatenate([state.timestamps for state in states])
    chance = np.concatenate([state.chance for state in states])
    tuple_lo = np.concatenate([state.tuple_lo for state in states])
    tuple_hi = np.concatenate([state.tuple_hi for state in states])
    tuple_present = np.concatenate([state.tuple_present for state in states])

    unique_keys, inverse = np.unique(keys, return_inverse=True)
    n = len(unique_keys)
    sum_packets = np.zeros(n)
    sum_bytes = np.zeros(n)
    max_ts = np.full(n, -np.inf)
    any_chance = np.zeros(n, dtype=bool)
    np.add.at(sum_packets, inverse, packets)
    np.add.at(sum_bytes, inverse, bytes_)
    np.maximum.at(max_ts, inverse, timestamps)
    np.logical_or.at(any_chance, inverse, chance)
    max_ts[np.isneginf(max_ts)] = 0.0

    merged_lo = np.zeros(n, dtype=np.uint64)
    merged_hi = np.zeros(n, dtype=np.uint64)
    merged_present = np.zeros(n, dtype=bool)
    # First-wins tuple selection, walking records in input order.
    for record in np.flatnonzero(tuple_present).tolist():
        group = inverse[record]
        if not merged_present[group]:
            merged_present[group] = True
            merged_lo[group] = tuple_lo[record]
            merged_hi[group] = tuple_hi[record]

    duplicates = len(keys) - n
    return WSAFState(
        num_entries=states[0].num_entries,
        probe_limit=states[0].probe_limit,
        eviction_policy=states[0].eviction_policy,
        size=n,
        insertions=sum(state.insertions for state in states) - duplicates,
        updates=sum(state.updates for state in states) + duplicates,
        evictions=sum(state.evictions for state in states),
        gc_reclaimed=sum(state.gc_reclaimed for state in states),
        rejected=sum(state.rejected for state in states),
        slots=np.full(n, -1, dtype=np.int64),
        keys=unique_keys,
        packets=sum_packets,
        bytes=sum_bytes,
        timestamps=max_ts,
        chance=any_chance,
        tuple_lo=merged_lo,
        tuple_hi=merged_hi,
        tuple_present=merged_present,
    )


def _merged_key_range(snapshots) -> "tuple[int, int] | None":
    ranges = [snap.key_range for snap in snapshots]
    if any(r is None for r in ranges):
        return None
    return (min(r[0] for r in ranges), max(r[1] for r in ranges))


def merge(snapshots, mode: str = "auto") -> MeasurementSnapshot:
    """Fold finalized snapshots into one.

    Args:
        snapshots: a non-empty sequence of compatible snapshots (same
            kind, same sketch/WSAF geometry, no in-progress streams).
        mode: ``"disjoint"`` demands that no flow key appears twice
            (raises otherwise) and concatenates; ``"overlap"``
            counter-sums per key; ``"auto"`` picks disjoint when the key
            sets do not intersect, overlap otherwise.

    The merged snapshot's ``estimates()`` are exactly the union (disjoint)
    or per-key sum (overlap) of the inputs'.  Its ``restore()`` places
    slot-exact records directly and re-probes the rest.
    """
    snapshots = list(snapshots)
    if not snapshots:
        raise SnapshotError("cannot merge zero snapshots")
    if mode not in ("auto", "disjoint", "overlap"):
        raise SnapshotError(f"unknown merge mode {mode!r}")
    _check_compatible(snapshots, require_seed=mode != "overlap")

    all_keys = np.concatenate(
        [
            (
                np.concatenate([snap.wsaf.keys, snap.wsaf.tier.keys])
                if snap.wsaf.tier is not None
                else snap.wsaf.keys
            )
            for snap in snapshots
        ]
    )
    disjoint = len(np.unique(all_keys)) == len(all_keys)
    if mode == "disjoint" and not disjoint:
        raise SnapshotError(
            "disjoint merge requested but the snapshots share flow keys; "
            "use mode='overlap' (or 'auto')"
        )
    use_disjoint = disjoint if mode == "auto" else mode == "disjoint"

    return MeasurementSnapshot(
        kind=snapshots[0].kind,
        config=dict(snapshots[0].config),
        regulator=_merge_regulators(snapshots),
        wsaf=_concat_wsaf(snapshots) if use_disjoint else _sum_wsaf(snapshots),
        stream=None,
        key_range=_merged_key_range(snapshots),
        shards_merged=sum(snap.shards_merged for snap in snapshots),
    )


# -- insertion-event logs (the multi-core in-process merge) -----------------


class InsertionLog:
    """Stands in for a shared WSAF during a worker run.

    Records ``(timestamp, key, est_packets, est_bytes, packed_tuple)``
    insertion events instead of applying them, so a manager can merge
    worker output deterministically — and ship it cheaply across process
    boundaries in parallel mode.
    """

    def __init__(self) -> None:
        self.events: "list[tuple]" = []

    def accumulate(
        self,
        key: int,
        est_packets: float,
        est_bytes: float,
        timestamp: float,
        five_tuple_packed: "int | None" = None,
    ) -> "tuple[float, float]":
        """Record one insertion event; totals resolve at merge time."""
        self.events.append(
            (timestamp, key, est_packets, est_bytes, five_tuple_packed)
        )
        return est_packets, est_bytes

    def accumulate_batch(
        self, events, on_accumulate=None
    ) -> "list[tuple[float, float]]":
        """Record a batch of events (the batched kernel's apply call)."""
        totals: "list[tuple[float, float]]" = []
        for key, est_packets, est_bytes, timestamp, five_tuple_packed in events:
            self.events.append(
                (timestamp, key, est_packets, est_bytes, five_tuple_packed)
            )
            if on_accumulate is not None:
                on_accumulate(key, est_packets, est_bytes, timestamp)
            totals.append((est_packets, est_bytes))
        return totals


def tag_events(events, worker_index: int, start_seq: int = 0) -> "list[tuple]":
    """Stamp raw log events with their ``(worker, sequence)`` merge key.

    Returns ``(timestamp, worker, sequence, key, est_pkt, est_byte,
    packed)`` tuples whose first three fields define the global apply
    order; ``start_seq`` continues a worker's sequence across chunks.
    """
    return [
        (timestamp, worker_index, sequence, key, est_pkt, est_byte, packed)
        for sequence, (timestamp, key, est_pkt, est_byte, packed) in enumerate(
            events, start=start_seq
        )
    ]


def release_ordered(
    pending: "list[tuple]", horizon: "float | None" = None
) -> "tuple[list[tuple], list[tuple]]":
    """Sort tagged events into global order and split at ``horizon``.

    Returns ``(released, held)``: events stamped strictly before
    ``horizon`` are safe to apply (no later packet can precede them);
    the rest wait for time to advance.  ``horizon=None`` releases all.
    """
    pending.sort(key=lambda event: event[:3])
    if horizon is None:
        return pending, []
    split = 0
    while split < len(pending) and pending[split][0] < horizon:
        split += 1
    return pending[:split], pending[split:]


def apply_events(wsaf, tagged, on_accumulate=None) -> None:
    """Apply released tagged events to ``wsaf`` in their merged order."""
    if not tagged:
        return
    wsaf.accumulate_batch(
        (
            (key, est_pkt, est_byte, timestamp, packed)
            for timestamp, _, _, key, est_pkt, est_byte, packed in tagged
        ),
        on_accumulate=on_accumulate,
    )
