"""Serializable measurement state — the one description of engine state.

Everything an InstaMeasure engine accumulates while measuring — regulator
word arrays and counters, WSAF records and eviction/GC bookkeeping, and
the RNG cursor of an in-progress ingest stream — is captured here as a
:class:`MeasurementSnapshot`: a plain dataclass tree whose bulk payloads
are NumPy columns.  Snapshots are the unit of state transfer across the
stack: process-sharded ingestion ships them between workers and the
manager (:mod:`repro.pipeline.sharded`), :func:`repro.state.merge.merge`
folds many of them into one, and :mod:`repro.state.codec` round-trips
them to bytes/files with a versioned, self-describing header.

Capture/restore is exact for both WSAF backing stores: a snapshot taken
from a scalar :class:`~repro.core.wsaf.WSAFTable` restores bit-identically
into a batched one and vice versa (the stores are state-identical by
contract).  An engine with an in-progress *known-length* ingest stream is
also exact: the stream's randomness is a deterministic function of
``(seed, total)`` and the cursor offset, so restore re-draws and seeks.
Unknown-length streams draw per chunk (history-dependent) and cannot be
reproduced from a cursor — capturing one raises :class:`SnapshotError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SnapshotError

#: Mask extracting the low 64 bits of a packed 104-bit 5-tuple.
_LOW64 = (1 << 64) - 1

#: ``MeasurementSnapshot.kind`` for single-engine captures.
KIND_INSTAMEASURE = "instameasure"


def pack_tuple_columns(tuples) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Split packed 104-bit 5-tuples into (lo, hi, present) columns.

    ``tuples`` is a sequence of ``int | None``; the 104-bit values exceed
    any fixed-width dtype, so they ship as two ``uint64`` halves plus a
    presence mask (``None`` entries are real — mice inserted through the
    scalar per-packet API may carry no tuple).
    """
    n = len(tuples)
    lo = np.zeros(n, dtype=np.uint64)
    hi = np.zeros(n, dtype=np.uint64)
    present = np.zeros(n, dtype=bool)
    for i, value in enumerate(tuples):
        if value is None:
            continue
        present[i] = True
        lo[i] = value & _LOW64
        hi[i] = value >> 64
    return lo, hi, present


def unpack_tuple_columns(lo, hi, present) -> "list[int | None]":
    """Inverse of :func:`pack_tuple_columns`."""
    values: "list[int | None]" = []
    for low, high, here in zip(lo.tolist(), hi.tolist(), present.tolist()):
        values.append((high << 64) | low if here else None)
    return values


@dataclass
class SketchState:
    """One RCC sketch's transferable state."""

    words: np.ndarray  # uint64, one per sketch word
    packets_encoded: int
    saturations: int

    def copy(self) -> "SketchState":
        return SketchState(
            words=self.words.copy(),
            packets_encoded=self.packets_encoded,
            saturations=self.saturations,
        )


@dataclass
class RegulatorState:
    """A regulator's sketches (deterministic order) plus its statistics."""

    sketches: "list[SketchState]"
    packets: int
    l1_saturations: int
    insertions: int

    def copy(self) -> "RegulatorState":
        return RegulatorState(
            sketches=[sketch.copy() for sketch in self.sketches],
            packets=self.packets,
            l1_saturations=self.l1_saturations,
            insertions=self.insertions,
        )


@dataclass
class TierState:
    """The hot-cache tier of a tiered WSAF backend.

    Cache records ship as parallel columns in key order; ``heat_keys`` /
    ``heat_counts`` carry the current interval's recent hit/miss counts
    (a key's tier membership — in ``keys`` or not — decides which side it
    restores to), and ``op_count`` pins the maintenance-tick phase, so a
    mid-interval capture round-trips bit-exactly.
    """

    cache_entries: int
    tier_interval: int
    op_count: int
    cache_updates: int
    promotions: int
    demotions: int
    keys: np.ndarray  # uint64, sorted
    packets: np.ndarray  # float64
    bytes: np.ndarray  # float64
    timestamps: np.ndarray  # float64
    chance: np.ndarray  # bool
    tuple_lo: np.ndarray  # uint64
    tuple_hi: np.ndarray  # uint64
    tuple_present: np.ndarray  # bool
    heat_keys: np.ndarray  # uint64, sorted
    heat_counts: np.ndarray  # int64

    @property
    def num_records(self) -> int:
        return len(self.keys)

    def tuples(self) -> "list[int | None]":
        return unpack_tuple_columns(
            self.tuple_lo, self.tuple_hi, self.tuple_present
        )


@dataclass
class IceState:
    """The per-bucket scale exponents of a compressed-counter backend.

    The main WSAF columns already hold the *dequantized* counter values
    (exact in float64), so the integer counters recompute from them; the
    scales are the only extra state a bit-exact restore needs.
    """

    bucket_slots: int
    counter_bits: int
    upscales: int
    scale_packets: np.ndarray  # int64, one per bucket
    scale_bytes: np.ndarray  # int64, one per bucket


@dataclass
class WSAFState:
    """A WSAF table's records and bookkeeping, as parallel columns.

    ``slots`` holds each record's table slot, or ``-1`` when the slot is
    unknown (merged snapshots with colliding placements); restore places
    slot-exact records directly and probe-places the rest.

    ``tier`` / ``ice`` are optional backend sections: a tiered backend's
    hot cache and a compressed backend's bucket scales.  Snapshots from
    the flat backend (and all merged snapshots — merging flattens) carry
    neither, and every consumer treats their absence as "plain flat
    records".  The top-level counters are always the *facade* totals
    (``size`` includes cached records; ``updates`` includes cache hits).
    """

    num_entries: int
    probe_limit: int
    eviction_policy: str
    size: int
    insertions: int
    updates: int
    evictions: int
    gc_reclaimed: int
    rejected: int
    slots: np.ndarray  # int64; -1 = placement unknown
    keys: np.ndarray  # uint64
    packets: np.ndarray  # float64
    bytes: np.ndarray  # float64
    timestamps: np.ndarray  # float64
    chance: np.ndarray  # bool
    tuple_lo: np.ndarray  # uint64
    tuple_hi: np.ndarray  # uint64
    tuple_present: np.ndarray  # bool
    tier: "TierState | None" = None
    ice: "IceState | None" = None

    @property
    def num_records(self) -> int:
        return len(self.keys)

    def tuples(self) -> "list[int | None]":
        """The packed 5-tuples, re-widened to Python ints."""
        return unpack_tuple_columns(
            self.tuple_lo, self.tuple_hi, self.tuple_present
        )


@dataclass
class StreamCursor:
    """RNG/bookkeeping cursor of an in-progress ingest stream.

    ``total`` is the *global* stream length the randomness was drawn for,
    or ``None`` for an unbounded stream; ``positions`` (optional) are the
    global packet positions this stream consumes, in order — the sharded
    pipeline's workers index the global draw through them, which is what
    makes per-shard streams bit-identical to their slice of a
    single-process run.  ``offset`` counts packets already consumed (an
    index into ``positions`` when present).

    Unbounded streams (``total is None``) draw their randomness in
    fixed-size blocks; ``rng_state`` is the generator state at the start
    of the current block, ``block_used`` how many of its ``block_size``
    entries were already consumed.  Together with ``offset`` that pins
    the exact next bit the stream hands out — the mechanism behind the
    service daemon's mid-flight checkpoints.
    """

    offset: int
    total: "int | None"
    positions: "np.ndarray | None"
    packets: int
    insertions: int
    l1_saturations: int
    elapsed: float
    rng_state: "dict | None" = None
    block_used: int = 0
    block_size: int = 0


@dataclass
class MeasurementSnapshot:
    """The complete serializable state of one measurement engine.

    Attributes:
        kind: snapshot flavor (:data:`KIND_INSTAMEASURE`).
        config: the engine's :class:`~repro.core.instameasure.
            InstaMeasureConfig` as a plain dict (restore rebuilds from it).
        regulator: regulator word arrays and counters.
        wsaf: WSAF records and bookkeeping.
        stream: cursor of an in-progress ingest stream, or ``None`` when
            the engine is between streams.
        key_range: the L1 word-index range ``[lo, hi)`` this snapshot
            covers under sharded ingestion, or ``None`` for a full run.
        shards_merged: how many worker snapshots were folded in (1 for a
            direct capture).
    """

    kind: str
    config: "dict"
    regulator: RegulatorState
    wsaf: WSAFState
    stream: "StreamCursor | None" = None
    key_range: "tuple[int, int] | None" = None
    shards_merged: int = 1
    extra: "dict" = field(default_factory=dict)

    def estimates(self, flow_keys=None) -> "dict[int, tuple[float, float]]":
        """Per-flow ``{key64: (packets, bytes)}`` straight off the columns.

        Same mapping a live table restored from this snapshot would
        report, without materializing the table.  Record order follows
        the capture (slot order for direct captures).
        """
        table = {
            key: (packets, bytes_)
            for key, packets, bytes_ in zip(
                self.wsaf.keys.tolist(),
                self.wsaf.packets.tolist(),
                self.wsaf.bytes.tolist(),
            )
        }
        if self.wsaf.tier is not None:
            # Tiered captures keep hot-cache records in their own section;
            # the tiers are exclusive, so this is a disjoint union.
            tier = self.wsaf.tier
            for key, packets, bytes_ in zip(
                tier.keys.tolist(),
                tier.packets.tolist(),
                tier.bytes.tolist(),
            ):
                table[key] = (packets, bytes_)
        if flow_keys is None:
            return table
        found: "dict[int, tuple[float, float]]" = {}
        for key in flow_keys:
            key = int(key)
            if key in table:
                found[key] = table[key]
        return found

    def restore(self, accountant=None):
        """Materialize a live :class:`~repro.core.instameasure.InstaMeasure`."""
        return restore_engine(self, accountant=accountant)


# -- regulator capture/restore ---------------------------------------------


def regulator_sketches(regulator) -> "list":
    """Every RCC sketch of ``regulator``, in a deterministic order.

    ``FlowRegulator`` contributes ``[l1, *l2]``; the generic multilayer
    regulator contributes L1 followed by each bank's sketches in noise-path
    construction order (dict insertion order, fixed at build time).
    Duck-typed on the ``banks`` attribute so this module never imports
    :mod:`repro.core` at import time.
    """
    banks = getattr(regulator, "banks", None)
    if banks is None:
        return [regulator.l1, *regulator.l2]
    return [
        regulator.l1,
        *(sketch for bank in banks for sketch in bank.values()),
    ]


def capture_regulator(regulator) -> RegulatorState:
    """Snapshot ``regulator``'s words and cumulative counters."""
    stats = regulator.stats
    return RegulatorState(
        sketches=[
            SketchState(
                words=sketch.words_array(),
                packets_encoded=sketch.packets_encoded,
                saturations=sketch.saturations,
            )
            for sketch in regulator_sketches(regulator)
        ],
        packets=stats.packets,
        l1_saturations=stats.l1_saturations,
        insertions=stats.insertions,
    )


def restore_regulator(regulator, state: RegulatorState) -> None:
    """Install ``state`` into a live regulator of matching geometry."""
    sketches = regulator_sketches(regulator)
    if len(sketches) != len(state.sketches):
        raise SnapshotError(
            f"regulator has {len(sketches)} sketches; snapshot carries "
            f"{len(state.sketches)}"
        )
    for sketch, saved in zip(sketches, state.sketches):
        sketch.set_words_array(saved.words)
        sketch.packets_encoded = saved.packets_encoded
        sketch.saturations = saved.saturations
    stats = regulator.stats
    stats.packets = state.packets
    stats.l1_saturations = state.l1_saturations
    stats.insertions = state.insertions


# -- engine capture/restore -------------------------------------------------


def capture_engine(engine, key_range=None) -> MeasurementSnapshot:
    """Snapshot a live :class:`~repro.core.instameasure.InstaMeasure`.

    In-progress streams are captured mid-flight: known-length streams as
    a plain offset into the up-front draw, unknown-length streams as the
    block-draw RNG cursor (see :class:`StreamCursor`).  The one exclusion
    is a stream that already served positional (``take_at``) gathers —
    its cursor no longer describes the consumed prefix, so capture raises
    :class:`SnapshotError`; finalize such a stream first.
    """
    from dataclasses import asdict

    stream_state = getattr(engine, "_stream", None)
    cursor = None
    if stream_state is not None:
        bits = stream_state.bits
        if getattr(bits, "positional", False):
            raise SnapshotError(
                "cannot snapshot a stream mid-flight after positional "
                "(take_at) gathers: the cursor no longer describes the "
                "consumed prefix; finalize() first"
            )
        if bits._total is None:
            from repro.core.instameasure import UNKNOWN_STREAM_BLOCK

            rng_state, block_used = bits.unknown_cursor()
            cursor = StreamCursor(
                offset=bits.offset,
                total=None,
                positions=None,
                packets=stream_state.packets,
                insertions=stream_state.insertions,
                l1_saturations=stream_state.l1_saturations,
                elapsed=stream_state.elapsed,
                rng_state=rng_state,
                block_used=block_used,
                block_size=UNKNOWN_STREAM_BLOCK,
            )
        else:
            cursor = StreamCursor(
                offset=bits.offset,
                total=bits._total,
                positions=(
                    None if bits.positions is None else bits.positions.copy()
                ),
                packets=stream_state.packets,
                insertions=stream_state.insertions,
                l1_saturations=stream_state.l1_saturations,
                elapsed=stream_state.elapsed,
            )
    return MeasurementSnapshot(
        kind=KIND_INSTAMEASURE,
        config=asdict(engine.config),
        regulator=capture_regulator(engine.regulator),
        wsaf=engine.wsaf.export_state(),
        stream=cursor,
        key_range=None if key_range is None else (key_range[0], key_range[1]),
    )


def restore_engine(snapshot: MeasurementSnapshot, accountant=None):
    """Rebuild a live engine from ``snapshot``, bit-identical to capture.

    The engine is constructed from the snapshot's embedded config, then
    regulator words/counters, WSAF records, and (when present) the ingest
    stream's RNG cursor are installed.  A restored mid-stream engine
    continues ingesting exactly where the captured one stopped.
    """
    from repro.core.instameasure import InstaMeasure, InstaMeasureConfig

    if snapshot.kind != KIND_INSTAMEASURE:
        raise SnapshotError(
            f"cannot restore snapshot kind {snapshot.kind!r} into an engine"
        )
    engine = InstaMeasure(InstaMeasureConfig(**snapshot.config), accountant)
    restore_regulator(engine.regulator, snapshot.regulator)
    engine.wsaf.load_state(snapshot.wsaf)
    cursor = snapshot.stream
    if cursor is not None:
        if cursor.total is None:
            from repro.core.instameasure import UNKNOWN_STREAM_BLOCK

            if cursor.rng_state is None:
                raise SnapshotError(
                    "unknown-length stream cursor is missing its RNG state"
                )
            if cursor.block_size != UNKNOWN_STREAM_BLOCK:
                raise SnapshotError(
                    f"snapshot drew unknown-stream blocks of "
                    f"{cursor.block_size} entries but this build uses "
                    f"{UNKNOWN_STREAM_BLOCK}; the cursor cannot be replayed"
                )
            engine.begin_stream()
            stream = engine._stream
            stream.bits.seek_unknown(
                cursor.rng_state, cursor.block_used, cursor.offset
            )
        else:
            engine.begin_stream(total=cursor.total, positions=cursor.positions)
            stream = engine._stream
            stream.bits.offset = cursor.offset
        stream.packets = cursor.packets
        stream.insertions = cursor.insertions
        stream.l1_saturations = cursor.l1_saturations
        stream.elapsed = cursor.elapsed
    return engine
