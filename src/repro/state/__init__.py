"""The serializable measurement-state layer.

One description of everything an engine accumulates — regulator words,
WSAF records, RNG cursors, eviction/GC bookkeeping — as
:class:`MeasurementSnapshot`, plus the operations the rest of the stack
builds on:

* :func:`capture_engine` / :func:`restore_engine` — exact state transfer
  for both scalar and batched engines, including mid-stream cursors.
* :func:`to_bytes` / :func:`from_bytes` / :func:`save` / :func:`load` —
  a versioned, self-describing wire format.
* :func:`merge` — fold worker snapshots (disjoint concatenation or
  overlapping counter-sum).
* :class:`ShardRouter` — word-range partitioning for exact process
  sharding (:mod:`repro.pipeline.sharded`).
* :class:`InsertionLog` + :func:`tag_events` / :func:`release_ordered` /
  :func:`apply_events` — the deterministic event merge the multi-core
  manager runs on.

No module here imports :mod:`repro.core` at import time; live-object
construction happens lazily inside the capture/restore helpers, so the
core engines can depend on this package without a cycle.
"""

from repro.state.codec import (
    FRAME_MAGIC,
    SNAPSHOT_VERSION,
    from_bytes,
    load,
    pack_frame,
    save,
    to_bytes,
    unpack_frame,
)
from repro.state.merge import (
    InsertionLog,
    apply_events,
    merge,
    release_ordered,
    tag_events,
)
from repro.state.shard import ShardRouter
from repro.state.snapshot import (
    IceState,
    MeasurementSnapshot,
    RegulatorState,
    SketchState,
    StreamCursor,
    TierState,
    WSAFState,
    capture_engine,
    capture_regulator,
    regulator_sketches,
    restore_engine,
    restore_regulator,
)

__all__ = [
    "FRAME_MAGIC",
    "IceState",
    "InsertionLog",
    "MeasurementSnapshot",
    "RegulatorState",
    "SNAPSHOT_VERSION",
    "ShardRouter",
    "SketchState",
    "StreamCursor",
    "TierState",
    "WSAFState",
    "apply_events",
    "capture_engine",
    "capture_regulator",
    "from_bytes",
    "load",
    "merge",
    "pack_frame",
    "regulator_sketches",
    "release_ordered",
    "restore_engine",
    "restore_regulator",
    "save",
    "tag_events",
    "to_bytes",
    "unpack_frame",
]
