"""Setuptools shim.

Kept alongside pyproject.toml so the package installs in offline
environments that lack the ``wheel`` package: there,
``pip install -e . --no-build-isolation --no-use-pep517`` takes the legacy
``setup.py develop`` path, which needs nothing beyond setuptools.
"""

from setuptools import setup

setup()
