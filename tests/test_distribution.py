"""Tests for distribution-level accuracy metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ccdf_distance, size_class_histogram, traffic_share_curve
from repro.errors import ConfigurationError


class TestSizeClassHistogram:
    def test_counts_per_class(self):
        truth = np.array([1, 5, 50, 500, 5000])
        estimated = np.array([0, 6, 40, 600, 4800])
        classes = size_class_histogram(estimated, truth, [1, 10, 100, 1000])
        assert [c.true_count for c in classes] == [2, 1, 1, 1]
        assert [c.estimated_count for c in classes] == [1, 1, 1, 1]

    def test_class_error(self):
        truth = np.array([5, 5, 5, 5])
        estimated = np.array([5, 5, 0, 0])
        (only,) = size_class_histogram(estimated, truth, [1])
        assert only.count_error == pytest.approx(0.5)

    def test_empty_class_zero_error(self):
        truth = np.array([5.0])
        classes = size_class_histogram(truth, truth, [1, 100])
        assert classes[1].count_error == 0.0

    def test_phantom_population_is_infinite_error(self):
        truth = np.array([5.0])
        estimated = np.array([500.0])
        classes = size_class_histogram(estimated, truth, [1, 100])
        assert classes[1].count_error == float("inf")

    def test_invalid_edges(self):
        truth = np.array([1.0])
        with pytest.raises(ConfigurationError):
            size_class_histogram(truth, truth, [])
        with pytest.raises(ConfigurationError):
            size_class_histogram(truth, truth, [10, 1])


class TestCCDFDistance:
    def test_identical_is_zero(self):
        truth = np.array([10.0, 100.0, 1000.0])
        assert ccdf_distance(truth, truth, min_size=5.0) == 0.0

    def test_missing_tail_detected(self):
        truth = np.array([10.0, 100.0, 1000.0, 10000.0])
        estimated = np.array([10.0, 100.0, 1000.0, 0.0])
        assert ccdf_distance(estimated, truth, min_size=5.0) >= 0.25

    def test_small_noise_small_distance(self):
        rng = np.random.default_rng(0)
        truth = rng.pareto(1.5, size=2000) * 100 + 50
        estimated = truth * rng.normal(1.0, 0.01, size=2000)
        assert ccdf_distance(estimated, truth, min_size=60.0) < 0.05

    def test_requires_populated_tail(self):
        with pytest.raises(ConfigurationError):
            ccdf_distance(np.array([1.0]), np.array([1.0]), min_size=100.0)


class TestTrafficShareCurve:
    def test_uniform_traffic(self):
        sizes = np.full(100, 10.0)
        (share,) = traffic_share_curve(sizes, [0.1])
        assert share == pytest.approx(0.1)

    def test_skewed_traffic(self):
        sizes = np.array([10_000.0] + [1.0] * 99)
        (share,) = traffic_share_curve(sizes, [0.01])
        assert share > 0.99

    def test_full_fraction_is_total(self):
        sizes = np.array([3.0, 2.0, 1.0])
        (share,) = traffic_share_curve(sizes, [1.0])
        assert share == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            traffic_share_curve(np.array([]), [0.5])
        with pytest.raises(ConfigurationError):
            traffic_share_curve(np.array([1.0]), [0.0])
