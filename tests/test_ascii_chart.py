"""Tests for text-based chart rendering."""

from __future__ import annotations

import pytest

from repro.analysis import bar_chart, sparkline
from repro.errors import ConfigurationError


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_extremes_map_to_ends(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁" and line[1] == "█"

    def test_monotone_series_is_nondecreasing(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert list(line) == sorted(line)

    def test_non_finite_marked(self):
        assert "?" in sparkline([1.0, float("nan"), 2.0])

    def test_all_non_finite_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([float("nan")])


class TestBarChart:
    def test_rows_and_scaling(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10  # max value fills the width
        assert lines[0].count("#") == 5

    def test_zero_values(self):
        chart = bar_chart(["x"], [0.0], width=10)
        assert "#" not in chart

    def test_unit_suffix(self):
        chart = bar_chart(["x"], [3.0], unit="%")
        assert "3%" in chart

    def test_empty(self):
        assert bar_chart([], []) == ""

    def test_mismatched_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [-1.0])

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0], width=0)
