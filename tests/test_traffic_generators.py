"""Tests for the Zipf sampler and the synthetic trace builders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.traffic import (
    AttackConfig,
    CaidaLikeConfig,
    CampusConfig,
    ZipfFlowSizes,
    build_caida_like_trace,
    build_campus_trace,
    inject_attack_flows,
    merge_traces,
)
from repro.traffic.attack import build_attack_trace
from repro.traffic.campus import hourly_intensity
from repro.traffic.synth import MAX_PACKET_BYTES, MIN_PACKET_BYTES


class TestZipfFlowSizes:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            ZipfFlowSizes(alpha=0.0)

    def test_rejects_bad_max(self):
        with pytest.raises(ConfigurationError):
            ZipfFlowSizes(max_size=0)

    def test_samples_in_range(self):
        sampler = ZipfFlowSizes(alpha=1.5, max_size=100)
        sizes = sampler.sample(10_000, np.random.default_rng(0))
        assert sizes.min() >= 1 and sizes.max() <= 100

    def test_pmf_sums_to_one(self):
        sampler = ZipfFlowSizes(alpha=2.0, max_size=50)
        total = sum(sampler.pmf(k) for k in range(1, 51))
        assert total == pytest.approx(1.0)

    def test_pmf_outside_support_is_zero(self):
        sampler = ZipfFlowSizes(alpha=2.0, max_size=50)
        assert sampler.pmf(0) == 0.0
        assert sampler.pmf(51) == 0.0

    def test_mice_dominate(self):
        sampler = ZipfFlowSizes(alpha=1.8, max_size=10_000)
        sizes = sampler.sample(20_000, np.random.default_rng(1))
        assert (sizes <= 10).mean() > 0.8

    def test_empirical_matches_pmf(self):
        sampler = ZipfFlowSizes(alpha=2.0, max_size=1000)
        sizes = sampler.sample(200_000, np.random.default_rng(2))
        observed_p1 = (sizes == 1).mean()
        assert observed_p1 == pytest.approx(sampler.pmf(1), rel=0.02)

    def test_mean_matches_empirical(self):
        sampler = ZipfFlowSizes(alpha=2.2, max_size=500)
        sizes = sampler.sample(300_000, np.random.default_rng(3))
        assert sizes.mean() == pytest.approx(sampler.mean(), rel=0.05)

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_sample_count(self, count):
        sampler = ZipfFlowSizes(alpha=1.5, max_size=20)
        assert len(sampler.sample(count, np.random.default_rng(0))) == count


class TestCaidaLikeTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return build_caida_like_trace(
            CaidaLikeConfig(num_flows=3000, duration=10.0, seed=4)
        )

    def test_reproducible(self, trace):
        again = build_caida_like_trace(
            CaidaLikeConfig(num_flows=3000, duration=10.0, seed=4)
        )
        assert np.array_equal(trace.timestamps, again.timestamps)
        assert np.array_equal(trace.flow_ids, again.flow_ids)

    def test_sorted_timestamps(self, trace):
        assert np.all(np.diff(trace.timestamps) >= 0)

    def test_every_flow_has_packets(self, trace):
        assert (trace.ground_truth_packets() > 0).all()

    def test_packet_sizes_in_wire_range(self, trace):
        assert trace.sizes.min() >= MIN_PACKET_BYTES
        assert trace.sizes.max() <= MAX_PACKET_BYTES

    def test_mice_dominated(self, trace):
        sizes = trace.ground_truth_packets()
        assert (sizes <= 10).mean() > 0.7

    def test_duration_respected(self, trace):
        assert trace.timestamps[-1] <= 10.0 + 1e-9

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            build_caida_like_trace(CaidaLikeConfig(num_flows=0))
        with pytest.raises(ConfigurationError):
            build_caida_like_trace(CaidaLikeConfig(tcp_fraction=0.9, udp_fraction=0.2))


class TestCampusTrace:
    def test_diurnal_intensity_shape(self):
        config = CampusConfig(hours=48, start_hour_of_week=0)
        intensity = hourly_intensity(config)
        assert len(intensity) == 48
        # 13:00 is the busiest hour of day one; 01:00 is near the floor.
        assert intensity[13] == pytest.approx(1.0)
        assert intensity[1] < 0.5

    def test_weekend_quieter(self):
        config = CampusConfig(hours=24 * 7, start_hour_of_week=0)
        intensity = hourly_intensity(config)
        weekday_peak = intensity[13]  # Monday 13:00
        saturday_peak = intensity[5 * 24 + 13]  # Saturday 13:00
        assert saturday_peak < weekday_peak

    def test_trace_builds_and_is_sorted(self):
        trace = build_campus_trace(CampusConfig(num_flows=2000, hours=24, seed=5))
        assert trace.num_packets > 0
        assert np.all(np.diff(trace.timestamps) >= 0)

    def test_protocol_mix(self):
        trace = build_campus_trace(CampusConfig(num_flows=5000, hours=24, seed=6))
        udp_share = (trace.flows.protocol == 17).mean()
        assert 0.03 < udp_share < 0.11

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            build_campus_trace(CampusConfig(hours=0))


class TestAttackInjection:
    def test_attack_trace_rate(self):
        attack = build_attack_trace(
            AttackConfig(rates_pps=[1000.0], duration=2.0, seed=0)
        )
        assert attack.num_packets == 2000
        # Mean arrival rate within 20 % of the configured rate.
        assert attack.duration == pytest.approx(2.0, rel=0.2)

    def test_injection_preserves_background(self):
        background = build_caida_like_trace(
            CaidaLikeConfig(num_flows=500, duration=5.0, seed=7)
        )
        merged, injected = inject_attack_flows(
            background, AttackConfig(rates_pps=[500.0, 800.0], duration=1.0)
        )
        assert len(injected) == 2
        truth = merged.ground_truth_packets()
        assert truth[injected[0]] == pytest.approx(500, rel=0.15)
        assert truth[injected[1]] == pytest.approx(800, rel=0.15)
        background_packets = merged.num_packets - truth[injected].sum()
        assert background_packets == background.num_packets

    def test_injected_flows_start_on_time(self):
        background = build_caida_like_trace(
            CaidaLikeConfig(num_flows=200, duration=5.0, seed=8)
        )
        merged, injected = inject_attack_flows(
            background,
            AttackConfig(rates_pps=[2000.0], duration=1.0, start_time=2.0),
        )
        mask = merged.flow_ids == injected[0]
        assert merged.timestamps[mask].min() >= 2.0

    def test_invalid_attack_rejected(self):
        with pytest.raises(ConfigurationError):
            build_attack_trace(AttackConfig(rates_pps=[]))
        with pytest.raises(ConfigurationError):
            build_attack_trace(AttackConfig(rates_pps=[-1.0]))


class TestMergeTraces:
    def test_merge_keeps_all_packets_sorted(self):
        a = build_caida_like_trace(CaidaLikeConfig(num_flows=300, duration=3.0, seed=1))
        b = build_caida_like_trace(CaidaLikeConfig(num_flows=300, duration=3.0, seed=2))
        merged = merge_traces(a, b)
        assert merged.num_packets == a.num_packets + b.num_packets
        assert merged.num_flows == a.num_flows + b.num_flows
        assert np.all(np.diff(merged.timestamps) >= 0)

    def test_merge_deduplicates_shared_flows(self):
        a = build_caida_like_trace(CaidaLikeConfig(num_flows=100, duration=2.0, seed=3))
        merged = merge_traces(a, a, deduplicate=True)
        assert merged.num_flows == a.num_flows
        assert np.array_equal(
            merged.ground_truth_packets(), 2 * a.ground_truth_packets()
        )

    def test_merge_rejects_mismatched_hash_seed(self):
        a = build_caida_like_trace(
            CaidaLikeConfig(num_flows=10, duration=1.0, hash_seed=0)
        )
        b = build_caida_like_trace(
            CaidaLikeConfig(num_flows=10, duration=1.0, hash_seed=1)
        )
        with pytest.raises(ConfigurationError):
            merge_traces(a, b)
