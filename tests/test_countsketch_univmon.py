"""Tests for Count-Sketch and the UnivMon-style universal sketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import CountSketch, UnivMon
from repro.detection import flow_size_entropy
from repro.errors import ConfigurationError
from repro.traffic import CaidaLikeConfig, build_caida_like_trace


@pytest.fixture(scope="module")
def trace():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=6000, duration=15.0, seed=111)
    )


class TestCountSketch:
    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            CountSketch(memory_bytes=4, depth=5)
        with pytest.raises(ConfigurationError):
            CountSketch(memory_bytes=1024, depth=0)

    def test_single_flow_exact(self):
        sketch = CountSketch(16 * 1024, seed=1)
        for _ in range(100):
            sketch.encode(42)
        assert sketch.query(42) == pytest.approx(100)

    def test_scalar_vector_query_agree(self, trace):
        sketch = CountSketch(32 * 1024, seed=2)
        sketch.encode_trace(trace)
        keys = trace.flows.key64[:15]
        vector = sketch.query_flows(keys)
        for i, key in enumerate(keys):
            assert vector[i] == pytest.approx(sketch.query(int(key)))

    def test_unbiased_on_elephants(self, trace):
        sketch = CountSketch(64 * 1024, seed=3)
        sketch.encode_trace(trace)
        truth = trace.ground_truth_packets().astype(float)
        big = truth >= 1000
        estimates = sketch.query_flows(trace.flows.key64[big])
        rel = np.abs(estimates - truth[big]) / truth[big]
        assert rel.mean() < 0.05

    def test_signed_estimates_average_out(self, trace):
        """Count-Sketch is unbiased: signed errors average near zero."""
        sketch = CountSketch(32 * 1024, seed=4)
        sketch.encode_trace(trace)
        truth = trace.ground_truth_packets().astype(float)
        sample = truth >= 50
        estimates = sketch.query_flows(trace.flows.key64[sample])
        bias = float(np.mean(estimates - truth[sample]))
        assert abs(bias) < 0.15 * truth[sample].mean()

    def test_l2_estimate_close(self, trace):
        sketch = CountSketch(64 * 1024, seed=5)
        sketch.encode_trace(trace)
        truth = trace.ground_truth_packets().astype(float)
        true_l2 = float(np.sqrt((truth**2).sum()))
        assert sketch.l2_estimate() == pytest.approx(true_l2, rel=0.05)

    def test_encode_count_parameter(self):
        sketch = CountSketch(16 * 1024, seed=6)
        sketch.encode(7, count=50)
        assert sketch.query(7) == pytest.approx(50)
        assert sketch.total_packets == 50


class TestUnivMon:
    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            UnivMon(1024, num_levels=0)
        with pytest.raises(ConfigurationError):
            UnivMon(1024 * 1024, heavy_candidates=0)

    def test_level_sampling_halves_population(self, trace):
        univmon = UnivMon(256 * 1024, num_levels=6, seed=7)
        levels = univmon._levels_array(trace.flows.key64)
        population = [(levels >= level).sum() for level in range(6)]
        for shallow, deep in zip(population, population[1:]):
            assert deep == pytest.approx(shallow / 2, rel=0.25)

    def test_level_of_matches_array(self, trace):
        univmon = UnivMon(64 * 1024, num_levels=6, seed=8)
        levels = univmon._levels_array(trace.flows.key64[:50])
        for i in range(50):
            assert int(levels[i]) == univmon._level_of(int(trace.flows.key64[i]))

    def test_heavy_hitters_found(self, trace):
        univmon = UnivMon(256 * 1024, num_levels=6, seed=9)
        univmon.encode_trace(trace)
        truth = trace.ground_truth_packets().astype(float)
        threshold = 2000.0
        true_hh = {
            int(key)
            for key, size in zip(trace.flows.key64, truth)
            if size >= threshold
        }
        found = set(univmon.heavy_hitters(threshold))
        assert true_hh  # trace actually has heavy hitters
        assert len(found & true_hh) >= 0.8 * len(true_hh)

    def test_heavy_hitters_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            UnivMon(64 * 1024).heavy_hitters(0.0)

    def test_entropy_in_right_ballpark(self, trace):
        univmon = UnivMon(256 * 1024, num_levels=6, heavy_candidates=128, seed=10)
        univmon.encode_trace(trace)
        truth = trace.ground_truth_packets().astype(float)
        true_entropy = flow_size_entropy(truth)
        estimate = univmon.entropy_estimate()
        assert estimate == pytest.approx(true_entropy, rel=0.35)

    def test_memory_split_across_levels(self):
        univmon = UnivMon(240 * 1024, num_levels=6, depth=5, seed=11)
        assert univmon.memory_bytes <= 240 * 1024
        assert len(univmon.levels) == 6
