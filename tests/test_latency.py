"""Tests for the detection-latency experiment (Fig 9(b))."""

from __future__ import annotations

import pytest

from repro.core import InstaMeasureConfig
from repro.detection import DelegationModel, detection_latency_experiment
from repro.errors import ConfigurationError
from repro.traffic import CaidaLikeConfig, build_caida_like_trace


@pytest.fixture(scope="module")
def background():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=1500, duration=4.0, seed=61)
    )


def _run(background, rates, threshold=200):
    return detection_latency_experiment(
        background,
        rates_pps=rates,
        threshold_packets=threshold,
        engine_config=InstaMeasureConfig(l1_memory_bytes=8192, wsaf_entries=1 << 14),
        attack_duration=2.0,
        attack_start=0.5,
    )


class TestDelegationModel:
    def test_detection_after_epoch_plus_delay(self):
        model = DelegationModel(epoch_seconds=0.01, network_delay_seconds=0.02)
        assert model.detection_time(0.005) == pytest.approx(0.03)
        assert model.detection_time(0.012) == pytest.approx(0.04)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            DelegationModel(epoch_seconds=0.0)


class TestLatencyExperiment:
    def test_latency_decreases_with_rate(self, background):
        """Fig 9(b): faster attackers are caught sooner."""
        samples = _run(background, [2_000.0, 50_000.0])
        assert len(samples) == 2
        slow, fast = samples
        assert slow.saturation_latency is not None
        assert fast.saturation_latency is not None
        assert fast.saturation_latency < slow.saturation_latency

    def test_latency_magnitude_matches_retention(self, background):
        """Lag ≈ retention capacity / rate (≈95 pkts / 10 kpps ≈ 10 ms)."""
        samples = _run(background, [10_000.0])
        (sample,) = samples
        assert sample.saturation_latency is not None
        # Overestimation noise can cross the threshold marginally early, so
        # the lag may dip just below zero; it must stay within ±1 retention
        # quantum (≈95 pkts / 10 kpps ≈ 10 ms).
        assert -0.012 < sample.saturation_latency < 0.05

    def test_saturation_beats_delegation(self, background):
        """Section II: saturation-based decoding is substantially faster."""
        samples = _run(background, [50_000.0])
        (sample,) = samples
        assert sample.saturation_latency is not None
        assert sample.saturation_latency < sample.delegation_latency

    def test_sub_threshold_rate_skipped(self, background):
        # 10 pps for 2 s = 20 packets < threshold 200: no crossing.
        samples = _run(background, [10.0])
        assert samples == []

    def test_invalid_inputs(self, background):
        with pytest.raises(ConfigurationError):
            detection_latency_experiment(background, [], threshold_packets=10)
        with pytest.raises(ConfigurationError):
            detection_latency_experiment(background, [1000.0], threshold_packets=0)
