"""Tests for flow/packet representations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.traffic import FiveTuple, FlowTable, Trace

FIVE_TUPLES = st.builds(
    FiveTuple,
    src_ip=st.integers(0, 2**32 - 1),
    dst_ip=st.integers(0, 2**32 - 1),
    src_port=st.integers(0, 2**16 - 1),
    dst_port=st.integers(0, 2**16 - 1),
    protocol=st.integers(0, 255),
)


class TestFiveTuple:
    @given(FIVE_TUPLES)
    def test_pack_unpack_roundtrip(self, ft):
        assert FiveTuple.unpack(ft.packed()) == ft

    @given(FIVE_TUPLES)
    def test_packed_fits_104_bits(self, ft):
        assert 0 <= ft.packed() < (1 << 104)

    @given(FIVE_TUPLES, FIVE_TUPLES)
    def test_distinct_tuples_distinct_packing(self, a, b):
        if a != b:
            assert a.packed() != b.packed()

    def test_key64_matches_flow_table(self):
        ft = FiveTuple(0x0A000001, 0x08080808, 1234, 443, 6)
        table = FlowTable.from_five_tuples([ft], hash_seed=42)
        assert ft.key64(42) == int(table.key64[0])


def _tiny_trace():
    flows = FlowTable.from_five_tuples(
        [
            FiveTuple(1, 2, 10, 20, 6),
            FiveTuple(3, 4, 30, 40, 17),
        ]
    )
    return Trace(
        timestamps=np.array([0.0, 0.5, 1.0, 2.0]),
        flow_ids=np.array([0, 1, 0, 0]),
        sizes=np.array([100, 200, 300, 400]),
        flows=flows,
    )


class TestFlowTable:
    def test_from_five_tuples_roundtrip(self):
        tuples = [FiveTuple(1, 2, 3, 4, 6), FiveTuple(5, 6, 7, 8, 17)]
        table = FlowTable.from_five_tuples(tuples)
        assert [table.five_tuple(i) for i in range(2)] == tuples
        assert list(table) == tuples

    def test_empty_table(self):
        table = FlowTable.from_five_tuples([])
        assert len(table) == 0

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            FlowTable(
                src_ip=np.zeros(2, dtype=np.uint32),
                dst_ip=np.zeros(3, dtype=np.uint32),
                src_port=np.zeros(2, dtype=np.uint16),
                dst_port=np.zeros(2, dtype=np.uint16),
                protocol=np.zeros(2, dtype=np.uint8),
            )

    def test_keys_differ_across_flows(self):
        table = FlowTable.from_five_tuples(
            [FiveTuple(1, 2, 3, 4, 6), FiveTuple(1, 2, 3, 5, 6)]
        )
        assert table.key64[0] != table.key64[1]


class TestTrace:
    def test_basic_properties(self):
        trace = _tiny_trace()
        assert trace.num_packets == 4
        assert trace.num_flows == 2
        assert trace.duration == pytest.approx(2.0)
        assert trace.total_bytes == 1000
        assert trace.mean_pps() == pytest.approx(2.0)

    def test_ground_truth_counts(self):
        trace = _tiny_trace()
        assert list(trace.ground_truth_packets()) == [3, 1]
        assert list(trace.ground_truth_bytes()) == [800, 200]

    def test_time_slice(self):
        trace = _tiny_trace()
        middle = trace.time_slice(0.5, 2.0)
        assert middle.num_packets == 2
        assert list(middle.flow_ids) == [1, 0]

    def test_time_slice_empty(self):
        trace = _tiny_trace()
        assert trace.time_slice(10.0, 20.0).num_packets == 0

    def test_packets_per_bucket(self):
        trace = _tiny_trace()
        starts, counts = trace.packets_per_bucket(1.0)
        assert list(counts) == [2, 1, 1]
        assert starts[0] == pytest.approx(0.0)

    def test_bytes_per_bucket(self):
        trace = _tiny_trace()
        _starts, volumes = trace.bytes_per_bucket(1.0)
        assert list(volumes) == [300, 300, 400]

    def test_unsorted_timestamps_rejected(self):
        flows = FlowTable.from_five_tuples([FiveTuple(1, 2, 3, 4, 6)])
        with pytest.raises(ConfigurationError):
            Trace(
                timestamps=np.array([1.0, 0.5]),
                flow_ids=np.array([0, 0]),
                sizes=np.array([100, 100]),
                flows=flows,
            )

    def test_out_of_range_flow_id_rejected(self):
        flows = FlowTable.from_five_tuples([FiveTuple(1, 2, 3, 4, 6)])
        with pytest.raises(ConfigurationError):
            Trace(
                timestamps=np.array([0.0]),
                flow_ids=np.array([5]),
                sizes=np.array([100]),
                flows=flows,
            )

    def test_empty_trace(self):
        flows = FlowTable.from_five_tuples([])
        trace = Trace(
            timestamps=np.array([]),
            flow_ids=np.array([], dtype=np.int64),
            sizes=np.array([], dtype=np.int64),
            flows=flows,
        )
        assert trace.duration == 0.0
        assert trace.mean_pps() == 0.0
