"""Property tests for the batch-probed array-backed WSAF and the
vectorized satellites that feed it.

The contract of :class:`repro.kernels.wsaf_batched.BatchedWSAFTable` is
*slot-for-slot identity* with the scalar :class:`repro.core.wsaf.WSAFTable`:
after applying the same event stream, every column (occupancy, keys,
packets, bytes, timestamps, second-chance bits, packed tuples), every
counter, and every per-event running total must match exactly — for every
eviction policy, with GC on and off, under eviction pressure, and under
adversarial cohorts engineered to land in one probe window.  The same
standard applies to the vectorized hashing paths and the run-length
SpaceSaving / matrix CSM feeds: vectorization is an execution strategy,
never a semantics change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.csm import CSMSketch
from repro.baselines.spacesaving import SpaceSaving
from repro.core.wsaf import WSAFTable
from repro.hashing.family import HashFamily
from repro.hashing.tabulation import TabulationHash
from repro.kernels.wsaf_batched import _SCALAR_CUTOFF, BatchedWSAFTable
from repro.traffic.synth import CaidaLikeConfig, build_caida_like_trace

POLICIES = WSAFTable.EVICTION_POLICIES


def _random_events(seed, n, key_space, with_tuples=True):
    """A reproducible event stream: (key, pkts, bytes, stamp, tuple)."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(1, key_space, size=n, dtype=np.uint64)
    pkts = rng.integers(1, 40, size=n).astype(np.float64)
    byts = pkts * rng.integers(40, 1500, size=n).astype(np.float64)
    stamps = np.cumsum(rng.random(n) * 0.3)
    tuples = (
        [(int(k) << 16) | 0xBEEF for k in keys.tolist()]
        if with_tuples
        else [None] * n
    )
    return list(
        zip(keys.tolist(), pkts.tolist(), byts.tolist(), stamps.tolist(), tuples)
    )


def _apply(table, events, chunk=None, collect_totals=True):
    """Feed ``events`` through a table, optionally split into batches."""
    totals = []
    chunk = chunk or len(events)
    for start in range(0, len(events), chunk):
        part = events[start : start + chunk]
        if isinstance(table, BatchedWSAFTable):
            out = table.accumulate_batch_arrays(
                np.array([e[0] for e in part], dtype=np.uint64),
                np.array([e[1] for e in part], dtype=np.float64),
                np.array([e[2] for e in part], dtype=np.float64),
                np.array([e[3] for e in part], dtype=np.float64),
                [e[4] for e in part],
                collect_totals=collect_totals,
            )
            if collect_totals:
                totals.extend(out)
        else:
            totals.extend(table.accumulate_batch(part))
    return totals


def _assert_slots_identical(scalar: WSAFTable, batched: BatchedWSAFTable):
    """Every slot, column, and counter must match exactly."""
    assert list(scalar._occupied) == batched._occupied.tolist()
    assert scalar._occupied_slots == set(
        np.flatnonzero(batched._occupied).tolist()
    )
    assert list(scalar._keys) == batched._keys.tolist()
    assert list(scalar._packets) == batched._packets.tolist()
    assert list(scalar._bytes) == batched._bytes.tolist()
    assert list(scalar._timestamps) == batched._timestamps.tolist()
    assert list(scalar._chance) == batched._chance.tolist()
    assert scalar._tuples == batched._tuples
    assert scalar.size == batched.size
    assert scalar.insertions == batched.insertions
    assert scalar.updates == batched.updates
    assert scalar.evictions == batched.evictions
    assert scalar.gc_reclaimed == batched.gc_reclaimed
    assert scalar.rejected == batched.rejected
    assert scalar.estimates() == batched.estimates()


def _pair(num_entries=1 << 8, **kwargs):
    scalar = WSAFTable(num_entries=num_entries, **kwargs)
    batched = BatchedWSAFTable(num_entries=num_entries, **kwargs)
    return scalar, batched


class TestSlotForSlotIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 17])
    def test_identity_across_seeds(self, seed):
        scalar, batched = _pair()
        events = _random_events(seed, 3000, key_space=1 << 20)
        totals_s = _apply(scalar, events)
        totals_b = _apply(batched, events, chunk=512)
        assert totals_s == totals_b
        _assert_slots_identical(scalar, batched)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_identity_under_eviction_pressure(self, policy):
        # 64 slots, probe window 4, far more flows than capacity: the
        # eviction path runs constantly for every policy.
        scalar, batched = _pair(
            num_entries=64, probe_limit=4, eviction_policy=policy
        )
        events = _random_events(5, 4000, key_space=1 << 16)
        totals_s = _apply(scalar, events)
        totals_b = _apply(batched, events, chunk=256)
        assert totals_s == totals_b
        _assert_slots_identical(scalar, batched)
        assert (
            batched.evictions > 0
            if policy != "reject"
            else batched.rejected > 0
        )

    @pytest.mark.parametrize("gc_timeout", [None, 2.0])
    def test_identity_with_gc(self, gc_timeout):
        scalar, batched = _pair(
            num_entries=128, probe_limit=8, gc_timeout=gc_timeout
        )
        # Long stream with advancing stamps so entries expire mid-stream.
        events = _random_events(9, 6000, key_space=1 << 14)
        totals_s = _apply(scalar, events)
        totals_b = _apply(batched, events, chunk=512)
        assert totals_s == totals_b
        _assert_slots_identical(scalar, batched)
        if gc_timeout is not None:
            assert batched.gc_reclaimed > 0

    def test_identity_adversarial_same_window_cohorts(self):
        # Every key hashes to the same base slot (key & mask identical), so
        # every cohort's probe window collides with every other's and the
        # conflict fixpoint must demote the whole batch to the scalar path.
        num_entries = 256
        scalar, batched = _pair(num_entries=num_entries, probe_limit=8)
        rng = np.random.default_rng(3)
        base = 7
        events = []
        stamp = 0.0
        for i in range(600):
            key = base + num_entries * int(rng.integers(1, 40))
            stamp += 0.01
            events.append((key, 2.0 + i % 5, 100.0, stamp, key << 4))
        totals_s = _apply(scalar, events)
        totals_b = _apply(batched, events, chunk=200)
        assert totals_s == totals_b
        _assert_slots_identical(scalar, batched)

    def test_identity_heavy_duplicate_cohorts(self):
        # One flow dominates the batch: within-cohort running totals must
        # still come out in event order (float addition is not associative),
        # and the long add-chain exercises the position-walk path.
        scalar, batched = _pair(num_entries=1 << 10)
        rng = np.random.default_rng(21)
        hot = 12345
        events = []
        stamp = 0.0
        for i in range(9000):
            stamp += 0.001
            if rng.random() < 0.7:
                key = hot
            else:
                key = int(rng.integers(1, 1 << 18))
            events.append((key, 0.1 * (i % 7 + 1), 33.3, stamp, None))
        totals_s = _apply(scalar, events)
        totals_b = _apply(batched, events, chunk=9000)
        assert totals_s == totals_b
        _assert_slots_identical(scalar, batched)

    def test_small_batches_take_scalar_path(self):
        scalar, batched = _pair()
        events = _random_events(2, _SCALAR_CUTOFF - 1, key_space=1 << 10)
        totals_s = _apply(scalar, events)
        totals_b = _apply(batched, events)
        assert totals_s == totals_b
        _assert_slots_identical(scalar, batched)

    def test_accumulate_batch_tuple_form_matches_arrays(self):
        a = BatchedWSAFTable(num_entries=1 << 8)
        b = BatchedWSAFTable(num_entries=1 << 8)
        events = _random_events(4, 2000, key_space=1 << 16)
        totals_a = a.accumulate_batch(events)
        totals_b = _apply(b, events, chunk=500)
        assert totals_a == totals_b
        _assert_slots_identical(a, b)

    def test_collect_totals_false_same_state_and_callbacks(self):
        with_totals = BatchedWSAFTable(num_entries=1 << 8)
        without = BatchedWSAFTable(num_entries=1 << 8)
        events = _random_events(6, 2500, key_space=1 << 16)
        seen_a, seen_b = [], []
        for start in range(0, len(events), 500):
            part = events[start : start + 500]
            cols = (
                np.array([e[0] for e in part], dtype=np.uint64),
                np.array([e[1] for e in part], dtype=np.float64),
                np.array([e[2] for e in part], dtype=np.float64),
                np.array([e[3] for e in part], dtype=np.float64),
                [e[4] for e in part],
            )
            totals = with_totals.accumulate_batch_arrays(
                *cols, lambda *args: seen_a.append(args)
            )
            out = without.accumulate_batch_arrays(
                *cols, lambda *args: seen_b.append(args), collect_totals=False
            )
            assert out is None
            assert totals is not None
        assert seen_a == seen_b
        assert with_totals.estimates() == without.estimates()
        assert with_totals.size == without.size


class TestEstimatesFilter:
    @pytest.mark.parametrize("cls", [WSAFTable, BatchedWSAFTable])
    def test_flow_keys_filter_matches_full_snapshot(self, cls):
        table = cls(num_entries=1 << 8)
        events = _random_events(8, 1500, key_space=1 << 12)
        if isinstance(table, BatchedWSAFTable):
            _apply(table, events, chunk=300)
        else:
            _apply(table, events)
        full = table.estimates()
        present = list(full)[::3]
        missing = [k for k in range(1 << 22, (1 << 22) + 50)]
        queried = table.estimates(flow_keys=present + missing)
        assert queried == {k: full[k] for k in present}

    @pytest.mark.parametrize("cls", [WSAFTable, BatchedWSAFTable])
    def test_empty_flow_keys(self, cls):
        table = cls(num_entries=1 << 6)
        _apply(table, _random_events(1, 100, key_space=1 << 8))
        assert table.estimates(flow_keys=[]) == {}

    def test_filter_accepts_ndarray(self):
        table = BatchedWSAFTable(num_entries=1 << 8)
        _apply(table, _random_events(12, 1000, key_space=1 << 12), chunk=250)
        full = table.estimates()
        keys = np.array(list(full)[:20], dtype=np.uint64)
        assert table.estimates(flow_keys=keys) == {
            int(k): full[int(k)] for k in keys
        }


class TestVectorizedHashing:
    def test_tabulation_hash_many_matches_scalar(self):
        hasher = TabulationHash(seed=5)
        keys = np.random.default_rng(5).integers(
            0, 1 << 64, size=4096, dtype=np.uint64
        )
        expected = [hasher.hash(int(k)) for k in keys.tolist()]
        assert hasher.hash_many(keys).tolist() == expected

    def test_family_hash_array_matches_scalar(self):
        family = HashFamily(size=5, seed=3)
        values = np.random.default_rng(3).integers(
            0, 1 << 32, size=2048, dtype=np.uint64
        )
        for index in range(5):
            expected = [family.hash(index, int(v)) for v in values.tolist()]
            assert family.hash_array(index, values).tolist() == expected

    def test_family_hash_matrix_matches_scalar(self):
        family = HashFamily(size=4, seed=11)
        values = np.random.default_rng(11).integers(
            0, 1 << 32, size=512, dtype=np.uint64
        )
        matrix = family.hash_matrix(values)
        assert matrix.shape == (values.size, 4)
        for index in range(4):
            assert matrix[:, index].tolist() == [
                family.hash(index, int(v)) for v in values.tolist()
            ]


class TestVectorizedBaselineFeeds:
    @pytest.fixture(scope="class")
    def trace(self):
        return build_caida_like_trace(
            CaidaLikeConfig(num_flows=800, duration=4.0, seed=13)
        )

    def test_spacesaving_run_length_equivalent(self, trace):
        vectorized = SpaceSaving(capacity=128)
        vectorized.process_trace(trace)
        reference = SpaceSaving(capacity=128)
        keys = trace.flows.key64.tolist()
        for flow in trace.flow_ids.tolist():
            reference.offer(keys[flow])
        assert vectorized._counts == reference._counts
        assert vectorized._errors == reference._errors
        assert vectorized.packets == reference.packets == trace.num_packets
        assert vectorized.topk(32) == reference.topk(32)

    def test_spacesaving_offer_run_equals_unit_offers(self):
        bulk = SpaceSaving(capacity=4)
        unit = SpaceSaving(capacity=4)
        stream = [(1, 5), (2, 3), (3, 4), (4, 2), (5, 6), (1, 2)]
        for key, count in stream:
            bulk.offer(key, count)
            for _ in range(count):
                unit.offer(key)
        assert bulk._counts == unit._counts
        assert bulk._errors == unit._errors

    def test_csm_placement_matrix_matches_scalar(self, trace):
        sketch = CSMSketch(memory_bytes=1 << 14, seed=7)
        locations = sketch._flow_counters_array(trace.flows.key64)
        for flow in range(0, locations.shape[0], 37):
            key = int(trace.flows.key64[flow])
            assert locations[flow].tolist() == sketch.flow_counters(key)

    def test_csm_encode_trace_matches_scalar_encodes(self, trace):
        vectorized = CSMSketch(memory_bytes=1 << 14, seed=7)
        vectorized.encode_trace(trace)
        reference = CSMSketch(memory_bytes=1 << 14, seed=7)
        # Same per-packet counter choices the vectorized path draws.
        rng = np.random.default_rng(reference.seed ^ 0xC5A)
        choices = rng.integers(
            0,
            reference.counters_per_flow,
            size=trace.num_packets,
            dtype=np.int64,
        )
        keys = trace.flows.key64.tolist()
        for i, flow in enumerate(trace.flow_ids.tolist()):
            reference.encode(keys[flow], int(choices[i]))
        assert np.array_equal(vectorized.pool, reference.pool)
        assert vectorized.total_packets == reference.total_packets
