"""Cross-cutting property-based tests (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import InstaMeasure, InstaMeasureConfig, RCCSketch, WSAFTable
from repro.core.rcc import coupon_partial_sum
from repro.traffic import FiveTuple, FlowTable, merge_traces
from repro.traffic.packet import Trace

# -- strategies ---------------------------------------------------------------

SMALL_U64 = st.integers(min_value=1, max_value=2**63)


@st.composite
def tiny_traces(draw):
    """Small random traces: a handful of flows, tens of packets."""
    num_flows = draw(st.integers(1, 6))
    tuples = [
        FiveTuple(
            draw(st.integers(0, 2**32 - 1)),
            draw(st.integers(0, 2**32 - 1)),
            draw(st.integers(0, 2**16 - 1)),
            draw(st.integers(0, 2**16 - 1)),
            draw(st.sampled_from([1, 6, 17])),
        )
        for _ in range(num_flows)
    ]
    flows = FlowTable.from_five_tuples(tuples)
    num_packets = draw(st.integers(1, 60))
    flow_ids = draw(
        st.lists(
            st.integers(0, num_flows - 1),
            min_size=num_packets,
            max_size=num_packets,
        )
    )
    gaps = draw(
        st.lists(
            st.floats(0.0, 1.0, allow_nan=False),
            min_size=num_packets,
            max_size=num_packets,
        )
    )
    sizes = draw(
        st.lists(st.integers(40, 1514), min_size=num_packets, max_size=num_packets)
    )
    return Trace(
        timestamps=np.cumsum(gaps),
        flow_ids=np.asarray(flow_ids, dtype=np.int64),
        sizes=np.asarray(sizes, dtype=np.int64),
        flows=flows,
    )


# -- properties ---------------------------------------------------------------


class TestRCCProperties:
    @given(SMALL_U64, st.integers(0, 7))
    @settings(max_examples=50, deadline=None)
    def test_encode_changes_only_own_window(self, key, bit):
        sketch = RCCSketch(256, vector_bits=8, seed=1)
        idx, offset = sketch.place(key)
        window = sketch._window_masks[offset]
        before = list(sketch.words)
        sketch.encode(key, bit)
        for word_index, (old, new) in enumerate(zip(before, sketch.words)):
            if word_index != idx:
                assert old == new
            else:
                assert (old ^ new) & ~window == 0

    @given(st.integers(2, 64))
    @settings(max_examples=30, deadline=None)
    def test_decode_table_strictly_increasing(self, b):
        values = [coupon_partial_sum(b, s) for s in range(b + 1)]
        assert all(later > earlier for earlier, later in zip(values, values[1:]))

    @given(SMALL_U64)
    @settings(max_examples=30, deadline=None)
    def test_fill_count_bounded_by_vector(self, key):
        sketch = RCCSketch(64, vector_bits=8, seed=2)
        rng = np.random.default_rng(0)
        for _ in range(50):
            sketch.encode(key, int(rng.integers(8)))
            assert 0 <= sketch.fill_count(key) < sketch.saturation_bits


class TestWSAFProperties:
    @given(st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_probe_permutation_every_power_of_two(self, exponent):
        size = 2**exponent
        table = WSAFTable(num_entries=size, probe_limit=size)
        assert sorted(table.probe_sequence(12345, length=size)) == list(range(size))

    @given(
        st.lists(
            st.tuples(st.integers(1, 30), st.floats(0.1, 10.0)),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_size_invariant_under_any_stream(self, operations):
        table = WSAFTable(num_entries=16, probe_limit=4)
        for step, (key, amount) in enumerate(operations):
            table.accumulate(key, amount, amount, float(step))
        assert len(table) == sum(table._occupied)
        assert table.insertions - table.evictions - table.gc_reclaimed == len(table)

    @given(
        st.lists(
            st.tuples(st.integers(1, 10), st.floats(0.1, 10.0)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_totals_conserved_without_eviction(self, operations):
        table = WSAFTable(num_entries=64, probe_limit=64)
        expected = 0.0
        for step, (key, amount) in enumerate(operations):
            table.accumulate(key, amount, 0.0, float(step))
            expected += amount
        assert table.evictions == 0
        total = sum(entry.packets for entry in table.entries())
        assert total == pytest.approx(expected)


class TestEngineProperties:
    @given(tiny_traces())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_engine_never_crashes_and_counts_all_packets(self, trace):
        engine = InstaMeasure(
            InstaMeasureConfig(l1_memory_bytes=256, wsaf_entries=64)
        )
        result = engine.process_trace(trace)
        assert result.packets == trace.num_packets
        est_packets, est_bytes = engine.estimates_for(trace)
        assert (est_packets >= 0).all()
        assert (est_bytes >= 0).all()

    @given(tiny_traces())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_residual_estimates_cover_retained_packets(self, trace):
        """estimate + residual never collapses to zero for active flows
        whose sketch word is private (a colliding neighbour's recycle can
        legitimately erase a lone bit, so shared words are exempt)."""
        engine = InstaMeasure(
            InstaMeasureConfig(l1_memory_bytes=4096, wsaf_entries=64)
        )
        engine.process_trace(trace)
        est, _ = engine.estimates_for(trace, include_residual=True)
        truth = trace.ground_truth_packets()
        placements = [
            engine.regulator.place(int(key))[0] for key in trace.flows.key64
        ]
        for flow in range(trace.num_flows):
            private_word = placements.count(placements[flow]) == 1
            if truth[flow] > 0 and private_word:
                assert est[flow] > 0.0


class TestMergeProperties:
    @given(tiny_traces(), tiny_traces())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_merge_conserves_packets_and_bytes(self, a, b):
        merged = merge_traces(a, b)
        assert merged.num_packets == a.num_packets + b.num_packets
        assert merged.total_bytes == a.total_bytes + b.total_bytes
        assert np.all(np.diff(merged.timestamps) >= 0)

    @given(tiny_traces())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_self_merge_dedup_doubles_counts(self, trace):
        merged = merge_traces(trace, trace, deduplicate=True)
        assert merged.num_flows <= trace.num_flows  # identical tuples merge
        assert merged.num_packets == 2 * trace.num_packets