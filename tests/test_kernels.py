"""Batched-kernel equivalence tests.

The contract of :mod:`repro.kernels` is *bit-identicality*: the batched
engine must leave exactly the same regulator words, counters, statistics,
and WSAF contents behind as the scalar per-packet loop, for every
configuration it claims to support.  These tests enforce that contract
across seeds, chunk sizes (including degenerate ones), eviction policies,
saturation thresholds, and vector geometries, and pin the gating rules
that route unsupported configurations back to the scalar path.
"""

from __future__ import annotations

import pytest

from repro.core.instameasure import InstaMeasure, InstaMeasureConfig
from repro.core.rcc import popcount_table
from repro.errors import ConfigurationError
from repro.kernels import SENTINEL, kernel_tables, supports_batched
from repro.traffic.synth import CaidaLikeConfig, build_caida_like_trace


@pytest.fixture(scope="module")
def trace():
    """A small but saturation-rich trace (heavy flows + mice)."""
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=2500, duration=8.0, seed=11)
    )


@pytest.fixture(params=["loop", "scan"])
def replay(request):
    """Both contested-stretch replays must satisfy the oracle."""
    return request.param


def _config(**overrides) -> InstaMeasureConfig:
    defaults = dict(l1_memory_bytes=2048, wsaf_entries=1 << 12, seed=0)
    defaults.update(overrides)
    return InstaMeasureConfig(**defaults)


def _run(trace, config):
    engine = InstaMeasure(config)
    result = engine.process_trace(trace)
    return engine, result


def _assert_identical(scalar_engine, batched_engine):
    """Every observable piece of state must match exactly."""
    scalar_reg = scalar_engine.regulator
    batched_reg = batched_engine.regulator
    assert scalar_reg.l1.words == batched_reg.l1.words
    assert scalar_reg.l1.packets_encoded == batched_reg.l1.packets_encoded
    assert scalar_reg.l1.saturations == batched_reg.l1.saturations
    assert len(scalar_reg.l2) == len(batched_reg.l2)
    for scalar_l2, batched_l2 in zip(scalar_reg.l2, batched_reg.l2):
        assert scalar_l2.words == batched_l2.words
        assert scalar_l2.packets_encoded == batched_l2.packets_encoded
        assert scalar_l2.saturations == batched_l2.saturations
    assert scalar_reg.stats == batched_reg.stats
    assert scalar_engine.wsaf.estimates() == batched_engine.wsaf.estimates()
    assert scalar_engine.wsaf.insertions == batched_engine.wsaf.insertions
    assert scalar_engine.wsaf.updates == batched_engine.wsaf.updates
    assert scalar_engine.wsaf.evictions == batched_engine.wsaf.evictions
    assert scalar_engine.wsaf.rejected == batched_engine.wsaf.rejected


class TestBitIdenticality:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_identical_across_seeds(self, trace, replay, seed):
        scalar_engine, scalar_result = _run(trace, _config(seed=seed, engine="scalar"))
        batched_engine, batched_result = _run(
            trace, _config(seed=seed, engine="batched", regulator_replay=replay)
        )
        assert scalar_result.packets == batched_result.packets == trace.num_packets
        assert scalar_result.insertions == batched_result.insertions
        _assert_identical(scalar_engine, batched_engine)

    @pytest.mark.parametrize("chunk_size", [1, 7, 4096, 1 << 20])
    def test_identical_across_chunk_sizes(self, trace, replay, chunk_size):
        scalar_engine, _ = _run(trace, _config(engine="scalar"))
        batched_engine, _ = _run(
            trace,
            _config(
                engine="batched", regulator_replay=replay, chunk_size=chunk_size
            ),
        )
        _assert_identical(scalar_engine, batched_engine)

    @pytest.mark.parametrize("policy", ["second-chance", "min", "reject"])
    def test_identical_under_eviction_pressure(self, trace, replay, policy):
        # A 16-entry table with a 4-slot probe window forces constant
        # evictions, so WSAF ordering bugs cannot hide.
        pressured = _config(
            wsaf_entries=16,
            probe_limit=4,
            eviction_policy=policy,
            regulator_replay=replay,
        )
        scalar_engine, _ = _run(trace, replace_engine(pressured, "scalar"))
        batched_engine, _ = _run(trace, replace_engine(pressured, "batched"))
        assert scalar_engine.wsaf.evictions > 0 or policy == "reject"
        _assert_identical(scalar_engine, batched_engine)

    @pytest.mark.parametrize("saturation_fill", [0.5, 0.75, 0.9])
    def test_identical_across_saturation_fill(self, trace, replay, saturation_fill):
        scalar_engine, _ = _run(
            trace, _config(engine="scalar", saturation_fill=saturation_fill)
        )
        batched_engine, _ = _run(
            trace,
            _config(
                engine="batched",
                regulator_replay=replay,
                saturation_fill=saturation_fill,
            ),
        )
        _assert_identical(scalar_engine, batched_engine)

    @pytest.mark.parametrize("vector_bits", [3, 4, 5, 8])
    def test_identical_across_vector_bits(self, trace, replay, vector_bits):
        scalar_engine, _ = _run(
            trace, _config(engine="scalar", vector_bits=vector_bits)
        )
        batched_engine, _ = _run(
            trace,
            _config(
                engine="batched",
                regulator_replay=replay,
                vector_bits=vector_bits,
            ),
        )
        _assert_identical(scalar_engine, batched_engine)

    def test_identical_with_64bit_words(self, trace, replay):
        scalar_engine, _ = _run(trace, _config(engine="scalar", word_bits=64))
        batched_engine, _ = _run(
            trace,
            _config(engine="batched", regulator_replay=replay, word_bits=64),
        )
        _assert_identical(scalar_engine, batched_engine)

    def test_callbacks_fire_identically(self, trace, replay):
        scalar_calls: list = []
        batched_calls: list = []
        scalar_engine = InstaMeasure(_config(engine="scalar"))
        scalar_engine.process_trace(
            trace, on_accumulate=lambda *args: scalar_calls.append(args)
        )
        batched_engine = InstaMeasure(
            _config(engine="batched", regulator_replay=replay)
        )
        batched_engine.process_trace(
            trace, on_accumulate=lambda *args: batched_calls.append(args)
        )
        assert scalar_calls == batched_calls
        assert len(scalar_calls) > 0

    def test_empty_trace(self, trace):
        empty = trace.time_slice(-2.0, -1.0)
        assert empty.num_packets == 0
        engine, result = _run(empty, _config(engine="batched"))
        assert result.packets == 0
        assert result.insertions == 0


def replace_engine(config: InstaMeasureConfig, engine: str) -> InstaMeasureConfig:
    """A copy of ``config`` running on ``engine``."""
    from dataclasses import replace

    return replace(config, engine=engine)


class TestEngineGating:
    def test_auto_falls_back_for_deep_regulators(self, trace):
        engine = InstaMeasure(_config(engine="auto", num_layers=3))
        assert not supports_batched(engine)
        result = engine.process_trace(trace)  # generic path must still run
        assert result.packets == trace.num_packets

    def test_batched_rejects_deep_regulators(self):
        with pytest.raises(ConfigurationError):
            InstaMeasure(_config(engine="batched", num_layers=3))

    def test_batched_rejects_wide_vectors(self):
        with pytest.raises(ConfigurationError):
            InstaMeasure(_config(engine="batched", vector_bits=16, word_bits=32))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            InstaMeasure(_config(engine="turbo"))

    def test_zero_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError):
            InstaMeasure(_config(chunk_size=0))


class TestKernelTables:
    def test_pair_table_matches_single_steps(self):
        """pair[state][a | b<<3] must equal two single transitions."""
        tables = kernel_tables(vector_bits=8, saturation_bits=6)
        for state in range(1 << 8):
            for bit_a in range(8):
                mid = tables.single[state][bit_a]
                for bit_b in range(8):
                    expected: int
                    if mid >= SENTINEL:
                        # First packet saturates: position 0, noise encoded.
                        expected = SENTINEL + 0 * 8 + (mid - SENTINEL)
                    else:
                        after = tables.single[mid][bit_b]
                        if after >= SENTINEL:
                            expected = SENTINEL + 1 * 8 + (after - SENTINEL)
                        else:
                            expected = after
                    assert tables.pair[state][bit_a | (bit_b << 3)] == expected

    def test_single_table_brute_force(self):
        """Transitions must match naive set-bit-then-check-saturation."""
        vector_bits, saturation_bits = 5, 4
        tables = kernel_tables(vector_bits, saturation_bits)
        for state in range(1 << vector_bits):
            for bit in range(vector_bits):
                merged = state | (1 << bit)
                set_bits = bin(merged).count("1")
                if set_bits >= saturation_bits:
                    expected = SENTINEL + (vector_bits - set_bits)
                else:
                    expected = merged
                assert tables.single[state][bit] == expected

    def test_b2_of_code_layout(self):
        tables = kernel_tables(vector_bits=8, saturation_bits=6)
        for bits1 in range(8):
            for bits2 in range(8):
                assert tables.b2_of_code[bits1 + 8 * bits2] == bits2

    def test_rejects_unsupported_geometry(self):
        with pytest.raises(ConfigurationError):
            kernel_tables(vector_bits=9, saturation_bits=6)
        with pytest.raises(ConfigurationError):
            kernel_tables(vector_bits=8, saturation_bits=0)

    def test_popcount_table_widths(self):
        assert popcount_table(8)[0b10110] == 3
        with pytest.raises(ConfigurationError):
            popcount_table(17)


class TestResultSemantics:
    def test_results_report_per_run_deltas(self, trace):
        """Satellite fix: a second run must not re-report the first's work."""
        for engine_name in ("scalar", "batched"):
            engine = InstaMeasure(_config(engine=engine_name))
            first = engine.process_trace(trace)
            second = engine.process_trace(trace)
            assert first.packets == trace.num_packets
            assert second.packets == trace.num_packets  # not 2x
            assert second.regulator_stats.packets == trace.num_packets
            # Cumulative totals still live on the regulator itself.
            assert engine.regulator.stats.packets == 2 * trace.num_packets

    def test_occupied_slot_set_consistency(self, trace):
        """The O(size) slot set must mirror the occupancy column exactly."""
        engine, _ = _run(
            trace, _config(engine="batched", wsaf_entries=16, probe_limit=4)
        )
        table = engine.wsaf
        expected = {
            slot for slot, used in enumerate(table._occupied) if used
        }
        assert table._occupied_slots == expected
        assert len(list(table.entries())) == table.size == len(expected)
