"""Tests for the IBLT and the FlowRadar-style baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import IBLT, BloomFilter, FlowRadar
from repro.errors import CapacityError, ConfigurationError
from repro.traffic import CaidaLikeConfig, build_caida_like_trace


class TestIBLT:
    def test_construction_limits(self):
        with pytest.raises(ConfigurationError):
            IBLT(num_cells=2, num_hashes=3)
        with pytest.raises(ConfigurationError):
            IBLT(num_cells=16, num_hashes=1)

    def test_roundtrip_small(self):
        table = IBLT(num_cells=64, seed=1)
        expected = {}
        for key in range(1, 21):
            table.insert(key, float(key))
            expected[key] = float(key)
        assert table.list_entries() == expected

    def test_increment_accumulates(self):
        table = IBLT(num_cells=64, seed=2)
        table.insert(7, 1.0)
        for _ in range(9):
            table.increment(7, 1.0)
        assert table.list_entries() == {7: 10.0}

    def test_listing_consumes_table(self):
        table = IBLT(num_cells=64, seed=3)
        table.insert(1, 1.0)
        table.list_entries()
        assert table.list_entries() == {}
        assert table.load == 0.0

    def test_overload_raises(self):
        table = IBLT(num_cells=30, seed=4)
        for key in range(1, 200):
            table.insert(key, 1.0)
        with pytest.raises(CapacityError):
            table.list_entries()

    def test_distinct_cells_per_key(self):
        table = IBLT(num_cells=16, seed=5)
        for key in (1, 999, 2**60):
            cells = table._cells_of(key)
            assert len(set(cells)) == len(cells)

    def test_capacity_threshold_roughly_holds(self):
        """Peeling succeeds below ~cells/1.3 and fails well above cells."""
        cells = 300
        good = IBLT(num_cells=cells, seed=6)
        for key in range(1, int(cells / 1.5)):
            good.insert(key, 1.0)
        assert len(good.list_entries()) == int(cells / 1.5) - 1


class TestIBLTProperties:
    @given(
        st.dictionaries(
            st.integers(1, 2**62),
            st.floats(0.5, 100.0, allow_nan=False),
            min_size=0,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_key_value_set(self, entries):
        table = IBLT(num_cells=256, seed=13)
        for key, value in entries.items():
            table.insert(key, value)
        recovered = table.list_entries()
        assert set(recovered) == set(entries)
        for key, value in entries.items():
            assert recovered[key] == pytest.approx(value)


class TestBloomFilter:
    def test_membership(self):
        bloom = BloomFilter(num_bits=1024, seed=7)
        bloom.add(42)
        assert 42 in bloom

    def test_absent_keys_mostly_absent(self):
        bloom = BloomFilter(num_bits=4096, seed=8)
        for key in range(100):
            bloom.add(key)
        false_positives = sum(1 for key in range(1000, 3000) if key in bloom)
        assert false_positives < 20

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(num_bits=4)
        with pytest.raises(ConfigurationError):
            BloomFilter(num_bits=64, num_hashes=0)


class TestFlowRadar:
    @pytest.fixture(scope="class")
    def trace(self):
        return build_caida_like_trace(
            CaidaLikeConfig(num_flows=1200, duration=8.0, seed=91)
        )

    def test_decode_recovers_exact_counts(self, trace):
        radar = FlowRadar(iblt_cells=4 * trace.num_flows, seed=9)
        radar.encode_trace(trace)
        recovered, stats = radar.decode()
        assert not stats.decode_failed
        truth = trace.ground_truth_packets()
        keys = trace.flows.key64
        hits = 0
        for flow in range(trace.num_flows):
            value = recovered.get(int(keys[flow]))
            if value is not None and value == pytest.approx(truth[flow]):
                hits += 1
        # Bloom false positives can merge a few flows; the rest are exact.
        assert hits >= 0.98 * trace.num_flows

    def test_constant_updates_per_packet(self, trace):
        radar = FlowRadar(iblt_cells=4 * trace.num_flows, seed=10)
        radar.encode_trace(trace)
        _recovered, stats = radar.decode()
        # Every packet costs a bounded number of memory updates — but ≥1.
        assert 3.0 <= stats.updates_per_packet <= 12.0

    def test_capacity_cliff(self, trace):
        """Too many flows per epoch -> decode fails outright (the failure
        mode InstaMeasure's WSAF avoids)."""
        radar = FlowRadar(iblt_cells=trace.num_flows // 4, seed=11)
        radar.encode_trace(trace)
        _recovered, stats = radar.decode()
        assert stats.decode_failed

    def test_distinct_flow_count_tracked(self, trace):
        radar = FlowRadar(iblt_cells=4 * trace.num_flows, seed=12)
        radar.encode_trace(trace)
        # Bloom false positives can only undercount distinct flows.
        assert radar.distinct_flows <= trace.num_flows
        assert radar.distinct_flows >= 0.97 * trace.num_flows
