"""Streaming pipeline: protocol conformance and chunked bit-identity.

The contract under test is the tentpole guarantee of the pipeline
refactor: feeding any measurer chunk by chunk — at *any* chunk boundary,
including one-packet chunks and a boundary landing inside a contested
stretch — produces exactly the state a single whole-trace call produces
(same counters, same WSAF records, same accumulation event order), and
every measurer in the repository satisfies the protocol.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    CSMSketch,
    CountMinSketch,
    CountSketch,
    CounterTree,
    DelegatingMeasurer,
    FlowRadar,
    NetFlowTable,
    RCCRegulatorMeasurer,
    SpaceSaving,
    UnivMon,
)
from repro.core import InstaMeasure, InstaMeasureConfig, MultiCoreInstaMeasure
from repro.errors import ConfigurationError
from repro.pipeline import (
    Pipeline,
    StreamingMeasurer,
    TraceChunkSource,
    as_chunk_source,
    run_pipeline,
)
from repro.traffic import (
    CaidaLikeConfig,
    FiveTuple,
    FlowTable,
    build_caida_like_trace,
)
from repro.traffic.packet import Trace


@pytest.fixture(scope="module")
def trace():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=2_500, duration=10.0, seed=11)
    )


@pytest.fixture(scope="module")
def tiny_trace():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=120, duration=2.0, seed=5)
    )


def _burst_trace() -> Trace:
    """One hot flow's contested stretch sandwiched in background traffic.

    400 consecutive packets of a single flow guarantee that any small
    chunk size cuts *inside* a contested stretch (the regulator is mid-
    saturation when the boundary lands).
    """
    num_background = 40
    tuples = [FiveTuple(0x0A000001, 0x0B000001, 40_000, 80, 6)]
    tuples += [
        FiveTuple(0x0C000000 + i, 0x0D000000 + i, 1_000 + i, 443, 6)
        for i in range(num_background)
    ]
    flows = FlowTable.from_five_tuples(tuples)
    head = np.arange(120) % num_background + 1
    burst = np.zeros(400, dtype=np.int64)
    tail = np.arange(120) % num_background + 1
    flow_ids = np.concatenate([head, burst, tail]).astype(np.int64)
    n = len(flow_ids)
    return Trace(
        timestamps=np.linspace(0.0, 4.0, n),
        flow_ids=flow_ids,
        sizes=np.full(n, 200, dtype=np.int64),
        flows=flows,
    )


def _engine(engine: str, wsaf_engine: str) -> InstaMeasure:
    return InstaMeasure(
        InstaMeasureConfig(
            l1_memory_bytes=2 * 1024,
            wsaf_entries=1 << 12,
            seed=3,
            engine=engine,
            wsaf_engine=wsaf_engine,
        )
    )


def _run_whole(engine: InstaMeasure, trace: Trace) -> "tuple[object, list]":
    events: "list[tuple]" = []
    result = engine.process_trace(
        trace, on_accumulate=lambda *event: events.append(event)
    )
    return result, events


def _run_chunked(
    engine: InstaMeasure, trace: Trace, chunk_size: int
) -> "tuple[object, list]":
    events: "list[tuple]" = []
    outcome = run_pipeline(
        engine,
        trace,
        chunk_size=chunk_size,
        on_accumulate=lambda *event: events.append(event),
    )
    return outcome.result, events


class TestInstaMeasureBitIdentity:
    @pytest.mark.parametrize("engine_kind", ["scalar", "batched"])
    @pytest.mark.parametrize("wsaf_kind", ["scalar", "batched"])
    @pytest.mark.parametrize("chunk_size", [997, 10_000, 1 << 30])
    def test_chunked_equals_whole(self, trace, engine_kind, wsaf_kind, chunk_size):
        whole, whole_events = _run_whole(_engine(engine_kind, wsaf_kind), trace)
        reference = _engine(engine_kind, wsaf_kind)
        chunked, chunk_events = _run_chunked(reference, trace, chunk_size)

        assert chunked.packets == whole.packets == trace.num_packets
        assert chunked.insertions == whole.insertions
        assert (
            chunked.regulator_stats.l1_saturations
            == whole.regulator_stats.l1_saturations
        )
        assert chunk_events == whole_events

        est = reference.estimates_for(trace)
        ref = _engine(engine_kind, wsaf_kind)
        ref.process_trace(trace)
        expected = ref.estimates_for(trace)
        np.testing.assert_array_equal(est[0], expected[0])
        np.testing.assert_array_equal(est[1], expected[1])

    @pytest.mark.parametrize("engine_kind", ["scalar", "batched"])
    def test_one_packet_chunks(self, tiny_trace, engine_kind):
        whole, whole_events = _run_whole(_engine(engine_kind, "batched"), tiny_trace)
        streamed = _engine(engine_kind, "batched")
        chunked, chunk_events = _run_chunked(streamed, tiny_trace, 1)
        assert chunked.insertions == whole.insertions
        assert chunk_events == whole_events

    @pytest.mark.parametrize("engine_kind", ["scalar", "batched"])
    @pytest.mark.parametrize("chunk_size", [53, 170, 333])
    def test_boundary_inside_contested_stretch(self, engine_kind, chunk_size):
        burst = _burst_trace()
        whole, whole_events = _run_whole(_engine(engine_kind, "batched"), burst)
        streamed = _engine(engine_kind, "batched")
        chunked, chunk_events = _run_chunked(streamed, burst, chunk_size)
        assert whole.insertions > 0  # the burst must actually contest
        assert chunked.insertions == whole.insertions
        assert chunk_events == whole_events

    def test_estimates_protocol_matches_estimates_for(self, trace):
        engine = _engine("batched", "batched")
        run_pipeline(engine, trace, chunk_size=4_096)
        table = engine.estimates(trace.flows.key64)
        est_packets, _ = engine.estimates_for(trace)
        for flow in np.flatnonzero(est_packets)[:50]:
            key = int(trace.flows.key64[flow])
            assert table[key][0] == est_packets[flow]


class TestRotation:
    def test_rotate_mid_stream_preserves_retained_counts(self, trace):
        plain = _engine("batched", "batched")
        plain.process_trace(trace)
        expected, _ = plain.estimates_for(trace)

        rotated = _engine("batched", "batched")
        outcome = run_pipeline(
            rotated, trace, chunk_size=3_000, epoch_seconds=2.0, rotate=True
        )
        # Rotation resets the regulator's statistics window, not the
        # sketch contents: flows straddling a boundary keep every packet.
        got, _ = rotated.estimates_for(trace)
        np.testing.assert_array_equal(got, expected)

        assert len(outcome.epochs) == 5  # 10 s / 2 s
        sizes = [len(record.snapshot) for record in outcome.epochs]
        assert sizes == sorted(sizes)
        assert all(record.snapshot is not None for record in outcome.epochs)

    def test_epochs_fire_for_empty_gaps(self, tiny_trace):
        # Stretch the trace with a quiet gap: epochs covering the gap
        # still fire, in order, exactly once each.
        t = tiny_trace
        late = Trace(
            timestamps=np.concatenate([t.timestamps, t.timestamps + 8.0]),
            flow_ids=np.concatenate([t.flow_ids, t.flow_ids]),
            sizes=np.concatenate([t.sizes, t.sizes]),
            flows=t.flows,
        )
        outcome = run_pipeline(
            _engine("batched", "batched"), late, epoch_seconds=1.0
        )
        duration = float(late.timestamps[-1] - late.timestamps[0])
        assert len(outcome.epochs) == int(duration // 1.0) + 1
        assert [record.index for record in outcome.epochs] == list(
            range(len(outcome.epochs))
        )


class TestMultiCore:
    def test_streaming_equals_whole(self, trace):
        config = InstaMeasureConfig(
            l1_memory_bytes=2 * 1024, wsaf_entries=1 << 12, seed=3
        )
        whole = MultiCoreInstaMeasure(3, config)
        whole_result = whole.process_trace(trace, parallel=False)

        streamed = MultiCoreInstaMeasure(3, config)
        outcome = run_pipeline(streamed, trace, chunk_size=4_321)
        result = outcome.result

        assert result.worker_packets == whole_result.worker_packets
        assert result.worker_insertions == whole_result.worker_insertions
        np.testing.assert_array_equal(
            streamed.estimates_for(trace)[0], whole.estimates_for(trace)[0]
        )


def _baseline_factories() -> "list":
    mem = 8 * 1024
    return [
        lambda: CountMinSketch(memory_bytes=mem, depth=4, seed=2),
        lambda: CountSketch(memory_bytes=mem, depth=5, seed=2),
        lambda: CSMSketch(memory_bytes=mem, counters_per_flow=16, seed=2),
        lambda: CounterTree(memory_bytes=mem, counter_bits=8, num_layers=3, seed=2),
        lambda: UnivMon(memory_bytes=4 * mem, num_levels=4, seed=2),
        lambda: NetFlowTable(max_entries=2_048, sampling_rate=0.5, seed=2),
        lambda: SpaceSaving(capacity=256),
        lambda: FlowRadar(iblt_cells=8_192, seed=2),
        lambda: DelegatingMeasurer(
            sketch_memory_bytes=mem,
            epoch_seconds=1.0,
            network_delay_seconds=0.02,
            seed=2,
        ),
        lambda: RCCRegulatorMeasurer(memory_bytes=mem, seed=2),
    ]


class TestBaselineProtocol:
    @pytest.mark.parametrize(
        "factory", _baseline_factories(), ids=lambda f: type(f()).__name__
    )
    def test_satisfies_protocol_and_chunking_is_lossless(self, trace, factory):
        measurer = factory()
        assert isinstance(measurer, StreamingMeasurer)

        run_pipeline(measurer, trace, chunk_size=7_321)
        whole = factory()
        run_pipeline(whole, trace, chunk_size=1 << 30)

        keys = trace.flows.key64[:2_000]
        assert measurer.estimates(keys) == whole.estimates(keys)

    def test_instameasure_engines_satisfy_protocol(self):
        assert isinstance(_engine("scalar", "scalar"), StreamingMeasurer)
        assert isinstance(_engine("batched", "batched"), StreamingMeasurer)
        assert isinstance(
            MultiCoreInstaMeasure(2, InstaMeasureConfig()), StreamingMeasurer
        )

    def test_pure_sketches_require_query_keys(self, tiny_trace):
        cms = CountMinSketch(memory_bytes=4 * 1024)
        run_pipeline(cms, tiny_trace)
        with pytest.raises(ConfigurationError):
            cms.estimates(None)

    def test_enumerable_measurers_list_their_table(self, tiny_trace):
        nf = NetFlowTable(max_entries=512)
        run_pipeline(nf, tiny_trace)
        table = nf.estimates()
        assert table
        assert all(packets > 0 for packets, _ in table.values())


class TestSourcesAndDriver:
    def test_source_rejects_bad_parameters(self, tiny_trace):
        with pytest.raises(ConfigurationError):
            TraceChunkSource(tiny_trace, chunk_size=0)
        with pytest.raises(ConfigurationError):
            TraceChunkSource(tiny_trace, chunk_size=64, epoch_seconds=0.0)
        source = TraceChunkSource(tiny_trace, chunk_size=64)
        with pytest.raises(ConfigurationError):
            as_chunk_source(source, chunk_size=128)
        with pytest.raises(ConfigurationError):
            as_chunk_source([1, 2, 3])

    def test_chunks_cover_stream_exactly_once(self, trace):
        source = TraceChunkSource(trace, chunk_size=3_333)
        spans = [(chunk.begin, chunk.end) for chunk in source]
        assert spans[0][0] == 0
        assert spans[-1][1] == trace.num_packets
        for (_, prev_end), (begin, _) in zip(spans, spans[1:]):
            assert begin == prev_end
        assert all(chunk.total_packets == trace.num_packets for chunk in source)

    def test_prebuilt_source_reuse(self, tiny_trace):
        source = TraceChunkSource(tiny_trace, chunk_size=97)
        first = Pipeline(_engine("batched", "batched")).run(source)
        second = Pipeline(_engine("batched", "batched")).run(source)
        assert first.packets == second.packets == tiny_trace.num_packets
        assert first.result.insertions == second.result.insertions

    def test_empty_trace(self):
        empty = build_caida_like_trace(
            CaidaLikeConfig(num_flows=10, duration=1.0, seed=1)
        )
        empty = Trace(
            timestamps=empty.timestamps[:0],
            flow_ids=empty.flow_ids[:0],
            sizes=empty.sizes[:0],
            flows=empty.flows,
        )
        outcome = run_pipeline(
            _engine("batched", "batched"), empty, epoch_seconds=1.0
        )
        assert outcome.packets == 0
        assert outcome.epochs == []
        assert outcome.result.packets == 0

    def test_pipeline_result_throughput_accounting(self, tiny_trace):
        outcome = run_pipeline(_engine("batched", "batched"), tiny_trace)
        assert outcome.packets == tiny_trace.num_packets
        assert outcome.elapsed_seconds > 0
        assert outcome.pps > 0
        assert sum(chunk.packets for chunk in outcome.chunks) == outcome.packets


class TestIncrementalDriver:
    """The begin/step/finish decomposition that run() is built on."""

    def test_step_loop_equals_run(self, tiny_trace):
        whole = run_pipeline(
            _engine("batched", "batched"), tiny_trace, chunk_size=500,
            epoch_seconds=1.0,
        )
        engine = _engine("batched", "batched")
        pipeline = Pipeline(engine, epoch_seconds=1.0)
        source = TraceChunkSource(
            tiny_trace, chunk_size=500, epoch_seconds=1.0
        )
        pipeline.begin(source)
        for chunk in source:
            pipeline.step(chunk)
        outcome = pipeline.finish()
        assert outcome.packets == whole.packets
        assert [e.index for e in outcome.epochs] == [
            e.index for e in whole.epochs
        ]
        assert engine.estimates() == whole.measurer.estimates()

    def test_step_without_begin_rejected(self, tiny_trace):
        pipeline = Pipeline(_engine("batched", "batched"))
        source = TraceChunkSource(tiny_trace, chunk_size=500)
        with pytest.raises(ConfigurationError):
            pipeline.step(next(iter(source)))
        with pytest.raises(ConfigurationError):
            pipeline.finish()

    def test_double_begin_rejected(self, tiny_trace):
        pipeline = Pipeline(_engine("batched", "batched"))
        pipeline.begin(TraceChunkSource(tiny_trace, chunk_size=500))
        with pytest.raises(ConfigurationError):
            pipeline.begin(TraceChunkSource(tiny_trace, chunk_size=500))

    def test_abort_allows_fresh_begin_and_keeps_state(self, tiny_trace):
        engine = _engine("batched", "batched")
        pipeline = Pipeline(engine)
        source = TraceChunkSource(tiny_trace, chunk_size=500)
        pipeline.begin(source)
        chunks = iter(source)
        pipeline.step(next(chunks))
        pipeline.abort()
        assert pipeline.active_epoch is None
        # The measurer keeps its mid-stream state across the abort.
        assert engine.finalize().packets == 500
        pipeline.begin(TraceChunkSource(tiny_trace, chunk_size=500))
        assert pipeline.active_epoch == 0

    def test_history_bounds_records(self, trace):
        engine = _engine("batched", "batched")
        pipeline = Pipeline(engine, epoch_seconds=1.0, history=3)
        outcome = pipeline.run(
            TraceChunkSource(trace, chunk_size=300, epoch_seconds=1.0)
        )
        assert len(outcome.chunks) == 3
        assert len(outcome.epochs) <= 3
        # Aggregates are unaffected by the trim.
        assert outcome.packets == trace.num_packets
        with pytest.raises(ConfigurationError):
            Pipeline(engine, history=0)

    def test_first_epoch_resumes_cadence(self, tiny_trace):
        fired: "list[int]" = []
        pipeline = Pipeline(
            _engine("batched", "batched"),
            epoch_seconds=1.0,
            on_epoch=lambda record, _m: fired.append(record.index),
        )
        source = TraceChunkSource(
            tiny_trace, chunk_size=500, epoch_seconds=1.0
        )
        pipeline.begin(source, first_epoch=5)
        assert pipeline.active_epoch == 5
        for chunk in source:
            pipeline.step(chunk)
        pipeline.finish()
        assert fired and fired[0] == 5
        assert fired == sorted(fired)
