"""IMSNAP forward/backward compatibility across the backend seam.

The wire format stayed at version 1 when backend sections were added:
``tier`` / ``ice`` are *additive* optional sections announced in the
header's ``wsaf.sections`` list.  The compatibility contracts:

* A v1 payload with no ``sections`` entry (every pre-backend snapshot,
  and every flat capture today) decodes and restores exactly as before —
  flat headers never mention sections at all.
* A payload announcing a section this decoder does not know must be
  rejected loudly (``SnapshotError``), never silently dropped: the
  unknown section's column bytes would otherwise be misattributed.
* The committed golden snapshots — captured with the pre-refactor flat
  tables — still describe exactly what the current flat backend produces
  on the same trace and config, for both the scalar and the batch-probed
  engine.  This is the bit-identity bar for the ``flat`` backend: same
  records, same slots, same counters, same estimates.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.core import InstaMeasure, InstaMeasureConfig
from repro.errors import SnapshotError
from repro.state import capture_engine, from_bytes, load, to_bytes
from repro.state.codec import MAGIC
from repro.traffic import CaidaLikeConfig, build_caida_like_trace

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: The trace and config the golden snapshots were captured with: a small
#: hot table (1 << 5 entries, probe limit 8) so evictions, GC reclaims,
#: and rejections are all non-zero — the goldens pin the *full* eviction
#: dynamics, not just the happy path.
GOLDEN_TRACE = dict(num_flows=3000, duration=20.0, seed=13)
GOLDEN_CONFIG = dict(
    l1_memory_bytes=256,
    wsaf_entries=1 << 5,
    probe_limit=8,
    seed=3,
    gc_timeout=5.0,
)


def _header_of(payload: bytes) -> dict:
    header_len = int.from_bytes(payload[len(MAGIC) : len(MAGIC) + 8], "little")
    return json.loads(payload[len(MAGIC) + 8 : len(MAGIC) + 8 + header_len])


def _tamper_header(payload: bytes, mutate) -> bytes:
    """Re-encode ``payload`` with ``mutate(header)`` applied."""
    header_len = int.from_bytes(payload[len(MAGIC) : len(MAGIC) + 8], "little")
    body_start = len(MAGIC) + 8 + header_len
    header = json.loads(payload[len(MAGIC) + 8 : body_start].decode())
    mutate(header)
    encoded = json.dumps(header, separators=(",", ":")).encode()
    return (
        MAGIC
        + len(encoded).to_bytes(8, "little")
        + encoded
        + payload[body_start:]
    )


@pytest.fixture(scope="module")
def flat_payload():
    trace = build_caida_like_trace(
        CaidaLikeConfig(num_flows=400, duration=4.0, seed=5)
    )
    engine = InstaMeasure(
        InstaMeasureConfig(l1_memory_bytes=1024, wsaf_entries=1 << 10, seed=3)
    )
    engine.process_trace(trace)
    return to_bytes(capture_engine(engine))


class TestSectionForwardCompat:
    def test_flat_header_is_section_free(self, flat_payload):
        wsaf_meta = _header_of(flat_payload)["wsaf"]
        assert "sections" not in wsaf_meta
        assert "tier" not in wsaf_meta
        assert "ice" not in wsaf_meta

    def test_sectionless_payload_restores_flat_unchanged(self, flat_payload):
        snapshot = from_bytes(flat_payload)
        assert snapshot.wsaf.tier is None
        assert snapshot.wsaf.ice is None
        assert to_bytes(snapshot) == flat_payload

    def test_unknown_section_is_rejected(self, flat_payload):
        tampered = _tamper_header(
            flat_payload,
            lambda header: header["wsaf"].update(sections=["holographic"]),
        )
        with pytest.raises(SnapshotError, match="unknown WSAF section"):
            from_bytes(tampered)

    def test_known_and_unknown_sections_still_reject(self, flat_payload):
        tampered = _tamper_header(
            flat_payload,
            lambda header: header["wsaf"].update(
                sections=["tier", "holographic"]
            ),
        )
        with pytest.raises(SnapshotError, match="unknown WSAF section"):
            from_bytes(tampered)

    def test_announced_section_without_payload_is_rejected(self, flat_payload):
        # A header claiming a tier section whose metadata/columns are
        # missing is a malformed snapshot, not a flat one.
        tampered = _tamper_header(
            flat_payload,
            lambda header: header["wsaf"].update(sections=["tier"]),
        )
        with pytest.raises(SnapshotError):
            from_bytes(tampered)


class TestGoldenFlatIdentity:
    """The flat backend is bit-identical to the pre-refactor tables."""

    @pytest.fixture(scope="class")
    def golden_trace(self):
        return build_caida_like_trace(CaidaLikeConfig(**GOLDEN_TRACE))

    @pytest.mark.parametrize("wsaf_engine", ["scalar", "batched"])
    def test_flat_backend_matches_golden(self, golden_trace, wsaf_engine):
        golden = load(GOLDEN_DIR / f"flat_{wsaf_engine}.imsnap")
        engine = InstaMeasure(
            InstaMeasureConfig(wsaf_engine=wsaf_engine, **GOLDEN_CONFIG)
        )
        engine.process_trace(golden_trace)
        current = capture_engine(engine)

        want, got = golden.wsaf, current.wsaf
        for counter in (
            "num_entries",
            "probe_limit",
            "eviction_policy",
            "size",
            "insertions",
            "updates",
            "evictions",
            "gc_reclaimed",
            "rejected",
        ):
            assert getattr(got, counter) == getattr(want, counter), counter
        for column in (
            "slots",
            "keys",
            "packets",
            "bytes",
            "timestamps",
            "chance",
            "tuple_lo",
            "tuple_hi",
            "tuple_present",
        ):
            assert np.array_equal(
                getattr(got, column), getattr(want, column)
            ), column
        assert got.tier is None and got.ice is None
        assert current.estimates() == golden.estimates()
        assert current.regulator.packets == golden.regulator.packets
        assert current.regulator.insertions == golden.regulator.insertions

    @pytest.mark.parametrize("wsaf_engine", ["scalar", "batched"])
    def test_golden_exercises_eviction_dynamics(self, wsaf_engine):
        golden = load(GOLDEN_DIR / f"flat_{wsaf_engine}.imsnap")
        assert golden.wsaf.evictions > 0
        assert golden.wsaf.gc_reclaimed > 0
        assert golden.wsaf.rejected > 0


#: Backend geometry the non-flat goldens were captured with — tuned so
#: the backend dynamics (promotions/demotions, upscales) and the table
#: dynamics (evictions, GC reclaims, rejections) are all non-zero.
GOLDEN_BACKENDS = {
    "tiered": dict(wsaf_backend="tiered", tier_cache_entries=4, tier_interval=64),
    "icebuckets": dict(
        wsaf_backend="icebuckets", ice_bucket_slots=8, ice_counter_bits=8
    ),
}

_WSAF_COUNTERS = (
    "num_entries",
    "probe_limit",
    "eviction_policy",
    "size",
    "insertions",
    "updates",
    "evictions",
    "gc_reclaimed",
    "rejected",
)
_WSAF_COLUMNS = (
    "slots",
    "keys",
    "packets",
    "bytes",
    "timestamps",
    "chance",
    "tuple_lo",
    "tuple_hi",
    "tuple_present",
)


class TestGoldenBackendIdentity:
    """Tiered and ICE backends are pinned per engine by one golden each.

    The goldens were captured with ``wsaf_engine="scalar"``; checking the
    batched run against the *same* golden is the cross-engine bit-identity
    contract — same estimates, same eviction/GC order, same promote/demote
    decisions, same upscale points, same tier/ice sections.
    """

    @pytest.fixture(scope="class")
    def golden_trace(self):
        return build_caida_like_trace(CaidaLikeConfig(**GOLDEN_TRACE))

    @pytest.mark.parametrize("backend", sorted(GOLDEN_BACKENDS))
    @pytest.mark.parametrize("wsaf_engine", ["scalar", "batched"])
    def test_backend_matches_golden(self, golden_trace, backend, wsaf_engine):
        golden = load(GOLDEN_DIR / f"{backend}.imsnap")
        engine = InstaMeasure(
            InstaMeasureConfig(
                wsaf_engine=wsaf_engine,
                **GOLDEN_CONFIG,
                **GOLDEN_BACKENDS[backend],
            )
        )
        engine.process_trace(golden_trace)
        current = capture_engine(engine)

        want, got = golden.wsaf, current.wsaf
        for counter in _WSAF_COUNTERS:
            assert getattr(got, counter) == getattr(want, counter), counter
        for column in _WSAF_COLUMNS:
            assert np.array_equal(
                getattr(got, column), getattr(want, column)
            ), column
        if backend == "tiered":
            assert got.ice is None
            for field in (
                "cache_entries",
                "tier_interval",
                "op_count",
                "cache_updates",
                "promotions",
                "demotions",
            ):
                assert getattr(got.tier, field) == getattr(
                    want.tier, field
                ), field
            for column in (
                "keys",
                "packets",
                "bytes",
                "timestamps",
                "chance",
                "tuple_lo",
                "tuple_hi",
                "tuple_present",
                "heat_keys",
                "heat_counts",
            ):
                assert np.array_equal(
                    getattr(got.tier, column), getattr(want.tier, column)
                ), column
        else:
            assert got.tier is None
            for field in ("bucket_slots", "counter_bits", "upscales"):
                assert getattr(got.ice, field) == getattr(
                    want.ice, field
                ), field
            assert np.array_equal(
                got.ice.scale_packets, want.ice.scale_packets
            )
            assert np.array_equal(got.ice.scale_bytes, want.ice.scale_bytes)
        assert current.estimates() == golden.estimates()
        assert current.regulator.packets == golden.regulator.packets
        assert current.regulator.insertions == golden.regulator.insertions

    @pytest.mark.parametrize("backend", sorted(GOLDEN_BACKENDS))
    def test_backend_golden_exercises_dynamics(self, backend):
        golden = load(GOLDEN_DIR / f"{backend}.imsnap")
        assert golden.wsaf.evictions > 0
        assert golden.wsaf.gc_reclaimed > 0
        assert golden.wsaf.rejected > 0
        if backend == "tiered":
            assert golden.wsaf.tier.promotions > 0
            assert golden.wsaf.tier.demotions > 0
        else:
            assert golden.wsaf.ice.upscales > 0
