"""Tiered and compressed WSAF storage backends.

The contracts under test are the backend seam's guarantees:

* Backend selection: ``wsaf_backend`` picks the storage algorithm and
  composes with either ``wsaf_engine`` (every backend has a scalar and
  a batch-probed form, bit-identical by contract), and every backend
  satisfies the :class:`~repro.core.wsaf_storage.WSAFStorage` protocol.
* The tiered store is lossless: with a roomy table its estimates equal
  the flat table's exactly, while the hot cache absorbs accumulates at
  SRAM cost (visible through the accountant's per-label pricing).
* Tiered snapshots round-trip bit-exactly through IMSNAP — including
  mid-interval heat state — and a *flat* table can restore a tiered
  snapshot by flushing the cache records into its slots.
* ICE-Buckets counters cost measurably less memory at a bounded
  relative error, and restore exactly through a snapshot (the float
  columns hold exact dequantized values; only scales ride in the
  ``ice`` section).
* Sharded ingestion with a tiered backend still merges exactly.
"""

from __future__ import annotations

import pytest

from repro.core import (
    InstaMeasure,
    InstaMeasureConfig,
    IceBucketsWSAFTable,
    TieredWSAFTable,
    WSAFStorage,
    WSAFTable,
    build_wsaf_storage,
    default_technologies,
)
from repro.core.instameasure import resolved_wsaf_engine
from repro.errors import ConfigurationError
from repro.kernels.wsaf_batched import (
    BatchedIceBucketsWSAFTable,
    BatchedWSAFTable,
)
from repro.memmodel import DRAM, SRAM, AccessAccountant
from repro.state import capture_engine, from_bytes, restore_engine, to_bytes
from repro.traffic import CaidaLikeConfig, build_caida_like_trace


@pytest.fixture(scope="module")
def trace():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=900, duration=6.0, seed=13)
    )


def _config(backend: str, **overrides) -> InstaMeasureConfig:
    base = dict(
        l1_memory_bytes=2 * 1024,
        wsaf_entries=1 << 12,
        seed=3,
        wsaf_backend=backend,
    )
    base.update(overrides)
    return InstaMeasureConfig(**base)


def _measured(trace, backend: str, **overrides) -> InstaMeasure:
    engine = InstaMeasure(_config(backend, **overrides))
    engine.process_trace(trace)
    return engine


class TestBackendSelection:
    def test_flat_scalar_builds_wsaf_table(self):
        table = build_wsaf_storage(_config("flat", wsaf_engine="scalar"))
        assert type(table) is WSAFTable

    def test_flat_batched_builds_batched_table(self):
        table = build_wsaf_storage(_config("flat", wsaf_engine="batched"))
        assert type(table) is BatchedWSAFTable

    def test_tiered_and_ice_build_their_tables(self):
        tiered = build_wsaf_storage(_config("tiered", wsaf_engine="scalar"))
        assert type(tiered) is TieredWSAFTable
        assert type(tiered.table) is WSAFTable
        assert (
            type(
                build_wsaf_storage(_config("icebuckets", wsaf_engine="scalar"))
            )
            is IceBucketsWSAFTable
        )

    @pytest.mark.parametrize("backend", ["flat", "tiered", "icebuckets"])
    def test_every_backend_satisfies_the_protocol(self, backend):
        assert isinstance(build_wsaf_storage(_config(backend)), WSAFStorage)

    def test_tiered_resolves_batched_under_auto(self):
        # The default 2-layer / 8-bit configuration batches the trace
        # path, so ``auto`` pairs the tiered backend with the
        # batch-probed form — the delegated array entry point must be
        # offered.
        config = _config("tiered")
        assert resolved_wsaf_engine(config) == "batched"
        table = build_wsaf_storage(config)
        assert callable(getattr(table, "accumulate_batch_arrays", None))

    def test_icebuckets_resolves_scalar_under_auto(self):
        # ICE-Buckets' quantized add chains are order-serial, so its
        # batched form measures slower than per-event accumulate on this
        # simulator; ``auto`` keeps the scalar table.  Forcing
        # ``wsaf_engine="batched"`` must still compose (bit-identical).
        assert resolved_wsaf_engine(_config("icebuckets")) == "scalar"
        forced = _config("icebuckets", wsaf_engine="batched")
        assert resolved_wsaf_engine(forced) == "batched"
        table = build_wsaf_storage(forced)
        assert callable(getattr(table, "accumulate_batch_arrays", None))

    def test_batched_engine_builds_batched_backends(self):
        tiered = build_wsaf_storage(_config("tiered", wsaf_engine="batched"))
        assert type(tiered) is TieredWSAFTable
        assert type(tiered.table) is BatchedWSAFTable
        assert (
            type(
                build_wsaf_storage(
                    _config("icebuckets", wsaf_engine="batched")
                )
            )
            is BatchedIceBucketsWSAFTable
        )

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ConfigurationError, match="wsaf_backend"):
            _config("bogus")

    @pytest.mark.parametrize(
        "field, value",
        [
            ("tier_cache_entries", 0),
            ("tier_interval", 0),
            ("ice_bucket_slots", 0),
            ("ice_counter_bits", 1),
            ("ice_counter_bits", 64),
        ],
    )
    def test_backend_knobs_are_validated(self, field, value):
        with pytest.raises(ConfigurationError):
            _config("flat", **{field: value})

    def test_default_technologies_price_the_cache_in_sram(self):
        technologies = default_technologies()
        assert technologies["wsaf.cache"] is SRAM


class TestTieredSemantics:
    def test_estimates_match_flat_exactly(self, trace):
        """Tiering is lossless: same per-flow sums as the flat table."""
        flat = _measured(trace, "flat")
        tiered = _measured(trace, "tiered", tier_interval=64)
        assert tiered.wsaf.table.evictions == 0  # roomy table: no loss
        assert tiered.estimates() == flat.estimates()

    def test_cache_warms_and_absorbs_hits(self, trace):
        engine = _measured(
            trace, "tiered", tier_cache_entries=64, tier_interval=64
        )
        wsaf = engine.wsaf
        assert wsaf.promotions > 0
        assert len(wsaf._cache) > 0
        assert wsaf.cache_hit_rate > 0.0
        assert wsaf.cache_updates > 0

    def test_facade_counters_cover_both_tiers(self, trace):
        wsaf = _measured(
            trace, "tiered", tier_cache_entries=64, tier_interval=64
        ).wsaf
        assert wsaf.size == wsaf.table.size + len(wsaf._cache)
        assert wsaf.updates == wsaf.table.updates + wsaf.cache_updates
        assert len(wsaf) == wsaf.size
        assert wsaf.memory_bytes() == (
            wsaf.table.memory_bytes() + wsaf.cache_memory_bytes()
        )

    def test_lookup_and_remove_span_both_tiers(self):
        table = TieredWSAFTable(
            num_entries=1 << 6, cache_entries=2, tier_interval=4
        )
        # Four accumulates trigger one tick; key 1 (hottest) promotes.
        for _ in range(3):
            table.accumulate(1, 1.0, 100.0, 0.5)
        table.accumulate(2, 1.0, 100.0, 0.6)
        assert 1 in table._cache
        hot = table.lookup(1)
        assert hot is not None and hot.packets == 3.0
        cold = table.lookup(2)
        assert cold is not None and cold.packets == 1.0

        removed = table.remove(1)
        assert removed is not None and removed.packets == 3.0
        assert table.lookup(1) is None
        assert table.remove(2) is not None
        assert table.size == 0

    def test_expire_sweeps_the_cache_too(self):
        table = TieredWSAFTable(
            num_entries=1 << 6, cache_entries=2, tier_interval=2
        )
        table.accumulate(1, 1.0, 100.0, 0.0)
        table.accumulate(1, 1.0, 100.0, 0.1)  # tick: 1 promotes
        assert 1 in table._cache
        table.accumulate(2, 1.0, 100.0, 5.0)
        reclaimed = table.expire_older_than(4.0)
        assert reclaimed == 1
        assert table.lookup(1) is None
        assert table.lookup(2) is not None
        assert table.gc_reclaimed >= 1

    def test_cache_hits_price_at_sram(self, trace):
        """Per-label pricing: the tiered run's WSAF stage models faster
        than pricing the same accesses all at DRAM latency."""
        accountant = AccessAccountant(DRAM, technologies=default_technologies())
        engine = InstaMeasure(
            _config("tiered", tier_cache_entries=64, tier_interval=64),
            accountant,
        )
        engine.process_trace(trace)
        by_label = accountant.by_label()
        assert by_label.get("wsaf.cache", 0) > 0
        tiered_s = accountant.modelled_seconds(labels=("wsaf", "wsaf.cache"))
        all_dram = AccessAccountant(DRAM)
        for label in ("wsaf", "wsaf.cache"):
            all_dram.record(label, reads=by_label.get(label, 0))
        assert tiered_s < all_dram.modelled_seconds()


class TestTieredSnapshot:
    def test_bit_exact_round_trip_mid_interval(self, trace):
        # A tick interval that does not divide the op count leaves live
        # heat state at capture; the round trip must carry it.
        engine = _measured(
            trace, "tiered", tier_cache_entries=64, tier_interval=257
        )
        wsaf = engine.wsaf
        assert wsaf.op_count % wsaf.tier_interval != 0
        assert wsaf._hits or wsaf._misses

        snapshot = capture_engine(engine)
        payload = to_bytes(snapshot)
        recovered = from_bytes(payload)
        assert to_bytes(recovered) == payload
        restored = restore_engine(recovered)
        assert to_bytes(capture_engine(restored)) == payload
        back = restored.wsaf
        assert back._cache == wsaf._cache
        assert back._hits == wsaf._hits
        assert back._misses == wsaf._misses
        assert back.op_count == wsaf.op_count
        assert back.promotions == wsaf.promotions
        assert back.demotions == wsaf.demotions

    def test_restored_engine_keeps_measuring_identically(self, trace):
        first = trace.time_slice(0.0, 3.0)
        second = trace.time_slice(3.0, trace.duration + 1.0)
        overrides = dict(tier_cache_entries=64, tier_interval=64)
        straight = InstaMeasure(_config("tiered", **overrides))
        straight.process_trace(first)
        straight.process_trace(second)

        engine = InstaMeasure(_config("tiered", **overrides))
        engine.process_trace(first)
        resumed = restore_engine(from_bytes(to_bytes(capture_engine(engine))))
        resumed.process_trace(second)
        assert resumed.estimates() == straight.estimates()
        assert to_bytes(capture_engine(resumed)) == to_bytes(
            capture_engine(straight)
        )

    def test_flat_table_restores_a_tiered_snapshot(self, trace):
        """A flat consumer flushes the tier section into its own slots."""
        engine = _measured(
            trace, "tiered", tier_cache_entries=64, tier_interval=64
        )
        state = engine.wsaf.export_state()
        assert state.tier is not None and state.tier.num_records > 0
        flat = WSAFTable(
            num_entries=engine.config.wsaf_entries,
            probe_limit=engine.config.probe_limit,
        )
        flat.load_state(state)
        assert flat.estimates() == engine.wsaf.estimates()
        assert flat.size == engine.wsaf.size

    def test_flat_snapshot_has_no_tier_section(self, trace):
        snapshot = capture_engine(_measured(trace, "flat"))
        assert snapshot.wsaf.tier is None
        assert snapshot.wsaf.ice is None


class TestIceBuckets:
    def test_counter_memory_reduction(self):
        flat = WSAFTable(num_entries=1 << 12)
        ice = IceBucketsWSAFTable(num_entries=1 << 12, counter_bits=16)
        assert flat.counter_memory_bytes() == (1 << 12) * 16
        assert ice.counter_memory_bytes() * 2 <= flat.counter_memory_bytes()
        assert ice.memory_bytes() < flat.memory_bytes()

    def test_bounded_relative_error(self, trace):
        flat = _measured(trace, "flat")
        ice = _measured(trace, "icebuckets", ice_counter_bits=16)
        reference = flat.estimates()
        got = ice.estimates()
        assert set(got) == set(reference)
        for key, (true_packets, true_bytes) in reference.items():
            est_packets, est_bytes = got[key]
            assert est_packets == pytest.approx(true_packets, rel=1e-3)
            assert est_bytes == pytest.approx(true_bytes, rel=1e-3)

    def test_small_counters_upscale(self, trace):
        engine = _measured(
            trace, "icebuckets", ice_counter_bits=8, ice_bucket_slots=32
        )
        assert engine.wsaf.upscales > 0

    def test_counters_hold_representable_values(self):
        table = IceBucketsWSAFTable(
            num_entries=1 << 6, bucket_slots=8, counter_bits=8
        )
        for _ in range(300):
            table.accumulate(7, 3.0, 900.0, 0.5)
        entry = table.lookup(7)
        bucket = next(
            slot for slot in table.probe_sequence(7) if table._occupied[slot]
        ) // table.bucket_slots
        scale = table._scale_packets[bucket]
        assert entry.packets == pytest.approx(
            round(entry.packets / (1 << scale)) * (1 << scale)
        )

    def test_exact_round_trip(self, trace):
        engine = _measured(
            trace, "icebuckets", ice_counter_bits=8, ice_bucket_slots=32
        )
        assert engine.wsaf.upscales > 0  # non-trivial scales in the section
        snapshot = capture_engine(engine)
        payload = to_bytes(snapshot)
        restored = restore_engine(from_bytes(payload))
        assert restored.estimates() == engine.estimates()
        assert to_bytes(capture_engine(restored)) == payload
        assert restored.wsaf.upscales == engine.wsaf.upscales
        assert (
            restored.wsaf._scale_packets == engine.wsaf._scale_packets
        )
        assert restored.wsaf._scale_bytes == engine.wsaf._scale_bytes

    def test_flat_table_restores_an_ice_snapshot(self, trace):
        """Dequantized floats are plain records to a flat consumer."""
        engine = _measured(trace, "icebuckets", ice_counter_bits=16)
        state = engine.wsaf.export_state()
        assert state.ice is not None
        flat = WSAFTable(
            num_entries=engine.config.wsaf_entries,
            probe_limit=engine.config.probe_limit,
        )
        flat.load_state(state)
        assert flat.estimates() == engine.wsaf.estimates()


class TestShardedTiered:
    def test_sharded_tiered_merges_exactly(self, trace):
        from repro.pipeline import ShardedPipeline, TraceChunkSource

        config = _config("tiered", tier_cache_entries=64, tier_interval=64)
        single = InstaMeasure(config)
        single.process_trace(trace)
        outcome = ShardedPipeline(config, num_shards=2, parallel=False).run(
            TraceChunkSource(trace)
        )
        assert outcome.estimates() == single.estimates()
        # The merged snapshot is flat (tiers folded) and restorable.
        merged = outcome.snapshot
        assert merged.wsaf.tier is None
        assert restore_engine(merged).estimates() == single.estimates()
