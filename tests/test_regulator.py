"""Tests for the two-layer FlowRegulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FlowRegulator
from repro.core.regulator import required_l1_bytes
from repro.errors import ConfigurationError


def _drive_single_flow(regulator, packets, key=42, seed=0):
    """Push ``packets`` packets of one flow; return summed WSAF estimates."""
    rng = np.random.default_rng(seed)
    b = regulator.vector_bits
    total = 0.0
    outputs = 0
    for _ in range(packets):
        est = regulator.process(key, int(rng.integers(b)), int(rng.integers(b)))
        if est is not None:
            total += est
            outputs += 1
    return total, outputs


class TestGeometry:
    def test_paper_memory_multiplier(self):
        # 8-bit vectors → 3 noise levels → 1 L1 + 3 L2 = 4 banks:
        # "when we use a 32KB L1 counter, the total size is 128KB".
        regulator = FlowRegulator(32 * 1024, vector_bits=8)
        assert regulator.total_memory_bytes == 128 * 1024

    def test_l2_bank_count_matches_noise_levels(self):
        regulator = FlowRegulator(1024, vector_bits=8)
        assert len(regulator.l2) == regulator.l1.noise_levels == 3

    def test_retention_capacity_is_multiplicative(self):
        # ≈ 9.7² ≈ 95 — "up to around 100 packets for a single flow".
        regulator = FlowRegulator(1024, vector_bits=8)
        assert 90.0 <= regulator.retention_capacity <= 100.0

    def test_layers_share_placement(self):
        regulator = FlowRegulator(1024, seed=5)
        idx, offset = regulator.place(99)
        for sketch in regulator.l2:
            assert sketch.place(99) == (idx, offset)

    def test_required_l1_bytes_inverse(self):
        assert required_l1_bytes(128 * 1024, vector_bits=8) == 32 * 1024

    def test_required_l1_bytes_rejects_tiny(self):
        with pytest.raises(ConfigurationError):
            required_l1_bytes(2, vector_bits=8)


class TestRegulation:
    def test_single_flow_output_rate_near_capacity_inverse(self):
        regulator = FlowRegulator(64, vector_bits=8, seed=1)
        packets = 100_000
        _total, outputs = _drive_single_flow(regulator, packets, seed=1)
        expected = packets / regulator.retention_capacity
        assert outputs == pytest.approx(expected, rel=0.2)

    def test_regulation_rate_is_order_of_magnitude_below_rcc(self):
        # The core claim: FR's output rate ≈ RCC's ÷ retention of L1.
        regulator = FlowRegulator(64, vector_bits=8, seed=2)
        _drive_single_flow(regulator, 100_000, seed=2)
        stats = regulator.stats
        assert stats.regulation_rate < stats.l1_saturation_rate / 5

    def test_estimate_accuracy_single_flow(self):
        regulator = FlowRegulator(64, vector_bits=8, seed=3)
        packets = 200_000
        total, _outputs = _drive_single_flow(regulator, packets, seed=3)
        residual = regulator.residual_estimate(42)
        assert total + residual == pytest.approx(packets, rel=0.1)

    def test_mice_flow_never_reaches_wsaf(self):
        # A 5-packet flow stays retained (probabilistically certain for a
        # fresh sketch: L1 cannot saturate before 6 set bits).
        regulator = FlowRegulator(64, vector_bits=8, seed=4)
        rng = np.random.default_rng(4)
        for _ in range(5):
            est = regulator.process(7, int(rng.integers(8)), int(rng.integers(8)))
            assert est is None

    def test_stats_count_packets(self):
        regulator = FlowRegulator(64, seed=5)
        _drive_single_flow(regulator, 1000, seed=5)
        assert regulator.stats.packets == 1000

    def test_reset_clears_state(self):
        regulator = FlowRegulator(64, seed=6)
        _drive_single_flow(regulator, 1000, seed=6)
        regulator.reset()
        assert regulator.stats.packets == 0
        assert regulator.residual_estimate(42) == 0.0

    def test_empty_stats_rates_are_zero(self):
        regulator = FlowRegulator(64)
        assert regulator.stats.regulation_rate == 0.0
        assert regulator.stats.l1_saturation_rate == 0.0


class TestResidual:
    def test_residual_zero_for_unseen_flow(self):
        regulator = FlowRegulator(1024, seed=7)
        assert regulator.residual_estimate(123) == 0.0

    def test_residual_counts_l1_fill(self):
        regulator = FlowRegulator(1024, seed=8)
        regulator.process(9, 0, 0)
        assert regulator.residual_estimate(9) == pytest.approx(1.0)

    def test_residual_includes_l2(self):
        regulator = FlowRegulator(64, vector_bits=8, seed=9)
        rng = np.random.default_rng(9)
        # Drive until at least one L1 saturation lands a bit in L2.
        for _ in range(200):
            regulator.process(5, int(rng.integers(8)), int(rng.integers(8)))
            if regulator.stats.l1_saturations:
                break
        assert regulator.stats.l1_saturations > 0
        assert regulator.residual_estimate(5) > regulator.l1.partial_estimate(5) - 1e-9


class TestTwoLayerAccuracyCost:
    def test_two_layer_noisier_than_single_for_same_total_bits(self):
        """Fig 8(c): FR pays a small accuracy penalty vs RCC.

        Measured as relative RMS error of accumulated estimates of a single
        flow over repeated runs.
        """
        from repro.core import RCCSketch

        packets = 20_000
        errors_fr = []
        errors_rcc = []
        for seed in range(5):
            rng = np.random.default_rng(100 + seed)
            regulator = FlowRegulator(64, vector_bits=8, seed=seed)
            total = 0.0
            for _ in range(packets):
                est = regulator.process(1, int(rng.integers(8)), int(rng.integers(8)))
                if est is not None:
                    total += est
            total += regulator.residual_estimate(1)
            errors_fr.append(abs(total - packets) / packets)

            rng = np.random.default_rng(200 + seed)
            sketch = RCCSketch(128, vector_bits=16, word_bits=32, seed=seed)
            total = 0.0
            for _ in range(packets):
                noise = sketch.encode(1, int(rng.integers(16)))
                if noise is not None:
                    total += sketch.decode(noise)
            total += sketch.partial_estimate(1)
            errors_rcc.append(abs(total - packets) / packets)

        # Both are accurate; the two-layer design may cost a little more.
        assert np.mean(errors_fr) < 0.1
        assert np.mean(errors_rcc) < 0.1
