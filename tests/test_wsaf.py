"""Tests for the WSAF table."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WSAFTable
from repro.core.wsaf import ENTRY_BYTES
from repro.errors import ConfigurationError
from repro.memmodel import DRAM, AccessAccountant


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            WSAFTable(num_entries=1000)

    def test_rejects_zero_probe_limit(self):
        with pytest.raises(ConfigurationError):
            WSAFTable(num_entries=16, probe_limit=0)

    def test_rejects_bad_gc_timeout(self):
        with pytest.raises(ConfigurationError):
            WSAFTable(num_entries=16, gc_timeout=0.0)

    def test_memory_matches_paper_layout(self):
        # 2^20 entries × 33 bytes ≈ 33 MB (Section IV-D).
        table = WSAFTable(num_entries=1 << 20)
        assert table.memory_bytes() == (1 << 20) * ENTRY_BYTES
        assert 33_000_000 <= table.memory_bytes() <= 35_000_000


class TestProbeSequence:
    @given(st.integers(0, 2**64 - 1))
    @settings(max_examples=30, deadline=None)
    def test_triangular_probing_visits_every_slot(self, key):
        """The paper's h(k,i)=hash(k)+0.5i+0.5i² visits all of [0, m-1]."""
        table = WSAFTable(num_entries=64, probe_limit=64)
        slots = list(table.probe_sequence(key, length=64))
        assert sorted(slots) == list(range(64))

    def test_probe_window_distinct(self):
        table = WSAFTable(num_entries=256, probe_limit=16)
        slots = list(table.probe_sequence(12345))
        assert len(set(slots)) == len(slots) == 16

    def test_probe_limit_clamped_to_table(self):
        table = WSAFTable(num_entries=8, probe_limit=100)
        assert table.probe_limit == 8


class TestAccumulate:
    def test_insert_then_lookup(self):
        table = WSAFTable(num_entries=64)
        table.accumulate(1, 10.0, 1000.0, 1.0, five_tuple_packed=0xABC)
        entry = table.lookup(1)
        assert entry is not None
        assert entry.packets == 10.0
        assert entry.bytes == 1000.0
        assert entry.five_tuple_packed == 0xABC

    def test_update_accumulates(self):
        table = WSAFTable(num_entries=64)
        table.accumulate(1, 10.0, 1000.0, 1.0)
        totals = table.accumulate(1, 5.0, 500.0, 2.0)
        assert totals == (15.0, 1500.0)
        assert len(table) == 1
        assert table.updates == 1 and table.insertions == 1

    def test_lookup_missing(self):
        table = WSAFTable(num_entries=64)
        assert table.lookup(999) is None

    def test_many_distinct_keys(self):
        table = WSAFTable(num_entries=1024, probe_limit=32)
        rng = np.random.default_rng(0)
        keys = [int(k) for k in rng.integers(1, 2**63, size=500)]
        for key in keys:
            table.accumulate(key, 1.0, 100.0, 0.0)
        assert len(table) == len(set(keys))
        for key in keys:
            assert table.lookup(key) is not None

    def test_estimates_snapshot(self):
        table = WSAFTable(num_entries=64)
        table.accumulate(5, 2.0, 20.0, 0.0)
        table.accumulate(6, 3.0, 30.0, 0.0)
        assert table.estimates() == {5: (2.0, 20.0), 6: (3.0, 30.0)}

    def test_entries_iterates_occupied_only(self):
        table = WSAFTable(num_entries=64)
        table.accumulate(5, 2.0, 20.0, 0.0)
        entries = list(table.entries())
        assert len(entries) == 1 and entries[0].key == 5

    def test_no_lost_counts_without_eviction(self):
        """Accumulations are conserved while nothing is evicted."""
        table = WSAFTable(num_entries=4096, probe_limit=64)
        rng = np.random.default_rng(1)
        truth: "dict[int, float]" = {}
        for _ in range(3000):
            key = int(rng.integers(1, 200))
            amount = float(rng.random())
            truth[key] = truth.get(key, 0.0) + amount
            table.accumulate(key, amount, amount, 0.0)
        assert table.evictions == 0 and table.rejected == 0
        for key, expected in truth.items():
            assert table.lookup(key).packets == pytest.approx(expected)


class TestEviction:
    def _full_window_table(self):
        """A tiny table whose single probe window is saturated."""
        table = WSAFTable(num_entries=8, probe_limit=8)
        for key in range(1, 9):
            table.accumulate(key, float(key * 10), 0.0, 0.0)
        assert len(table) == 8
        return table

    def test_second_chance_spares_then_evicts(self):
        table = self._full_window_table()
        # First overflow insert: every entry holds a chance bit, so the
        # insert is rejected and all bits are cleared.
        table.accumulate(100, 1.0, 0.0, 1.0)
        assert table.rejected == 1
        # Second attempt: chance bits are gone; the smallest entry is evicted.
        table.accumulate(100, 1.0, 0.0, 1.0)
        assert table.evictions == 1
        assert table.lookup(100) is not None

    def test_eviction_picks_smallest(self):
        table = self._full_window_table()
        table.accumulate(100, 1.0, 0.0, 1.0)  # clears chance bits
        table.accumulate(100, 1.0, 0.0, 1.0)  # evicts the mouse
        # The smallest pre-existing entry (key=1, packets=10) is gone.
        assert table.lookup(1) is None
        assert table.lookup(8) is not None

    def test_update_restores_chance_bit(self):
        table = self._full_window_table()
        table.accumulate(100, 1.0, 0.0, 1.0)  # clears all chance bits
        table.accumulate(1, 1.0, 0.0, 2.0)  # key 1 is touched again
        table.accumulate(200, 1.0, 0.0, 3.0)  # evicts smallest chance-less
        assert table.lookup(1) is not None  # spared by its fresh chance bit
        assert table.lookup(2) is None  # next-smallest was evicted

    def test_size_stable_under_eviction(self):
        table = self._full_window_table()
        table.accumulate(100, 1.0, 0.0, 1.0)
        table.accumulate(100, 1.0, 0.0, 1.0)
        assert len(table) == 8
        assert table.load_factor == 1.0


class TestEvictionPolicies:
    def _full_table(self, policy):
        table = WSAFTable(num_entries=8, probe_limit=8, eviction_policy=policy)
        for key in range(1, 9):
            table.accumulate(key, float(key * 10), 0.0, 0.0)
        return table

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            WSAFTable(num_entries=8, eviction_policy="lru")

    def test_min_policy_evicts_immediately(self):
        table = self._full_table("min")
        table.accumulate(100, 1.0, 0.0, 1.0)
        assert table.evictions == 1
        assert table.rejected == 0
        assert table.lookup(1) is None  # smallest evicted, no second chance
        assert table.lookup(100) is not None

    def test_reject_policy_never_evicts(self):
        table = self._full_table("reject")
        for _ in range(5):
            table.accumulate(100, 1.0, 0.0, 1.0)
        assert table.evictions == 0
        assert table.rejected == 5
        assert table.lookup(100) is None
        assert all(table.lookup(key) is not None for key in range(1, 9))

    def test_reject_policy_still_garbage_collects(self):
        table = WSAFTable(
            num_entries=8, probe_limit=8, gc_timeout=10.0, eviction_policy="reject"
        )
        table.accumulate(1, 5.0, 0.0, 0.0)
        for key in range(2, 9):
            table.accumulate(key, 50.0, 0.0, 195.0)
        table.accumulate(99, 1.0, 0.0, 300.0)  # all expired -> reclaim
        assert table.gc_reclaimed >= 1
        assert table.lookup(99) is not None

    def test_second_chance_protects_hot_mice(self):
        """A small-but-recently-active flow survives under second-chance
        (its fresh chance bit diverts the eviction to the next-smallest),
        but not under plain minimum eviction."""
        # min: the smallest entry dies on the first overflow insert.
        table = self._full_table("min")
        table.accumulate(1, 1.0, 0.0, 1.0)  # key 1 is hot, but min ignores it
        table.accumulate(100, 1.0, 0.0, 2.0)
        assert table.lookup(1) is None

        # second-chance: after the chance-clearing pass, re-touching key 1
        # renews its protection; the next eviction takes key 2 instead.
        table = self._full_table("second-chance")
        table.accumulate(100, 1.0, 0.0, 1.0)  # rejected; clears chance bits
        table.accumulate(1, 1.0, 0.0, 2.0)  # key 1 hot again
        table.accumulate(100, 1.0, 0.0, 3.0)  # evicts smallest chance-less
        assert table.lookup(1) is not None
        assert table.lookup(2) is None


class TestGarbageCollection:
    def test_expired_entry_reclaimed_on_probe(self):
        table = WSAFTable(num_entries=8, probe_limit=8, gc_timeout=10.0)
        table.accumulate(1, 5.0, 0.0, 0.0)
        # Fill the rest (recently) so the new key must walk past the one
        # stale entry; only key 1 is older than the timeout at t=200.
        for key in range(2, 9):
            table.accumulate(key, 50.0, 0.0, 195.0)
        table.accumulate(99, 1.0, 0.0, 200.0)  # key 1 is long expired
        assert table.gc_reclaimed >= 1
        assert table.lookup(1) is None
        assert table.lookup(99) is not None

    def test_fresh_entries_not_collected(self):
        table = WSAFTable(num_entries=16, probe_limit=16, gc_timeout=1000.0)
        for key in range(1, 10):
            table.accumulate(key, 1.0, 0.0, 0.0)
        table.accumulate(50, 1.0, 0.0, 1.0)
        assert table.gc_reclaimed == 0
        assert len(table) == 10


class TestAccounting:
    def test_accumulate_costs_probes_plus_write(self):
        accountant = AccessAccountant(DRAM)
        table = WSAFTable(num_entries=64, accountant=accountant)
        table.accumulate(1, 1.0, 0.0, 0.0)
        assert accountant.writes == 1
        assert accountant.reads >= 1
