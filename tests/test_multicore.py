"""Tests for the multi-core manager/worker system."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InstaMeasureConfig, MultiCoreInstaMeasure
from repro.core.multicore import dispatch_array, dispatch_worker
from repro.errors import ConfigurationError
from repro.traffic import CaidaLikeConfig, build_caida_like_trace


@pytest.fixture(scope="module")
def trace():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=8000, duration=20.0, seed=31)
    )


def _config(**overrides):
    defaults = dict(l1_memory_bytes=4096, wsaf_entries=1 << 14, seed=0)
    defaults.update(overrides)
    return InstaMeasureConfig(**defaults)


class TestDispatch:
    def test_scalar_matches_paper_rule(self):
        assert dispatch_worker(0b1011, 4) == 3  # popcount 3 mod 4
        assert dispatch_worker(0, 4) == 0

    def test_array_matches_scalar(self):
        ips = np.array([0, 1, 0xFFFFFFFF, 0xDEADBEEF, 12345], dtype=np.uint32)
        vec = dispatch_array(ips, 3)
        for i, ip in enumerate(ips):
            assert int(vec[i]) == dispatch_worker(int(ip), 3)

    def test_flow_affinity(self, trace):
        """All packets of a flow land on the same worker."""
        system = MultiCoreInstaMeasure(4, _config())
        assignment = system.dispatch(trace)
        for flow in np.unique(trace.flow_ids[:2000]):
            workers = np.unique(assignment[trace.flow_ids == flow])
            assert len(workers) == 1

    def test_all_workers_used(self, trace):
        system = MultiCoreInstaMeasure(4, _config())
        assignment = system.dispatch(trace)
        assert set(np.unique(assignment)) == {0, 1, 2, 3}


class TestMultiCoreRun:
    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            MultiCoreInstaMeasure(0)

    def test_packets_partitioned_exactly(self, trace):
        system = MultiCoreInstaMeasure(3, _config())
        result = system.process_trace(trace)
        assert result.packets == trace.num_packets
        assert len(result.worker_packets) == 3

    def test_load_shares_sum_to_one(self, trace):
        system = MultiCoreInstaMeasure(4, _config())
        result = system.process_trace(trace)
        assert sum(result.load_shares) == pytest.approx(1.0)
        assert result.max_load_share >= 1.0 / 4

    def test_parallel_speedup_bounds(self, trace):
        system = MultiCoreInstaMeasure(4, _config())
        result = system.process_trace(trace)
        assert 1.0 <= result.parallel_speedup <= 4.0

    def test_regulation_rate_matches_single_core_scale(self, trace):
        system = MultiCoreInstaMeasure(2, _config())
        result = system.process_trace(trace)
        assert 0.002 <= result.regulation_rate <= 0.03

    def test_accuracy_comparable_to_single_core(self, trace):
        from repro.core import InstaMeasure

        truth = trace.ground_truth_packets().astype(float)
        big = truth >= 1500
        assert big.sum() >= 2

        single = InstaMeasure(_config())
        single.process_trace(trace)
        est_single, _ = single.estimates_for(trace)

        system = MultiCoreInstaMeasure(4, _config())
        system.process_trace(trace)
        est_multi, _ = system.estimates_for(trace)

        err_single = np.abs(est_single[big] - truth[big]) / truth[big]
        err_multi = np.abs(est_multi[big] - truth[big]) / truth[big]
        assert err_multi.mean() < max(0.12, 2.5 * err_single.mean())

    def test_shared_wsaf_collects_all_workers(self, trace):
        system = MultiCoreInstaMeasure(4, _config())
        result = system.process_trace(trace)
        assert result.wsaf is system.wsaf
        assert result.insertions == (
            system.wsaf.insertions + system.wsaf.updates + system.wsaf.rejected
        )

    def test_single_worker_degenerates_to_single_core(self, trace):
        from repro.core import InstaMeasure

        single = InstaMeasure(_config())
        single.process_trace(trace)

        system = MultiCoreInstaMeasure(1, _config())
        result = system.process_trace(trace)
        assert result.packets == trace.num_packets
        assert system.workers[0].regulator.l1.words == single.regulator.l1.words
        assert system.wsaf.estimates() == single.wsaf.estimates()


class TestParallelExecution:
    """parallel=True (forked processes) must be bit-identical to sequential."""

    def _run(self, trace, parallel, num_workers=3):
        system = MultiCoreInstaMeasure(num_workers, _config(), parallel=parallel)
        result = system.process_trace(trace)
        return system, result

    def test_parallel_matches_sequential(self, trace):
        seq_system, seq_result = self._run(trace, parallel=False)
        par_system, par_result = self._run(trace, parallel=True)

        assert seq_result.worker_packets == par_result.worker_packets
        assert seq_result.worker_insertions == par_result.worker_insertions
        for seq_worker, par_worker in zip(seq_system.workers, par_system.workers):
            seq_reg, par_reg = seq_worker.regulator, par_worker.regulator
            assert seq_reg.l1.words == par_reg.l1.words
            assert seq_reg.l1.packets_encoded == par_reg.l1.packets_encoded
            assert seq_reg.l1.saturations == par_reg.l1.saturations
            for seq_l2, par_l2 in zip(seq_reg.l2, par_reg.l2):
                assert seq_l2.words == par_l2.words
                assert seq_l2.packets_encoded == par_l2.packets_encoded
                assert seq_l2.saturations == par_l2.saturations
            assert seq_reg.stats == par_reg.stats
        assert seq_system.wsaf.estimates() == par_system.wsaf.estimates()
        assert seq_system.wsaf.insertions == par_system.wsaf.insertions
        assert seq_system.wsaf.updates == par_system.wsaf.updates
        assert seq_system.wsaf.evictions == par_system.wsaf.evictions

    def test_parallel_override_per_call(self, trace):
        """The constructor default can be overridden per process_trace call."""
        system = MultiCoreInstaMeasure(2, _config(), parallel=True)
        result = system.process_trace(trace, parallel=False)
        assert result.packets == trace.num_packets

    def test_callbacks_fire_in_timestamp_order(self, trace):
        timestamps = []
        system = MultiCoreInstaMeasure(3, _config())
        system.process_trace(
            trace,
            on_accumulate=lambda key, pkts, byts, ts: timestamps.append(ts),
            parallel=True,
        )
        assert timestamps, "expected at least one insertion"
        assert timestamps == sorted(timestamps)
