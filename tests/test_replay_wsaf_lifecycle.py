"""Tests for trace replay utilities and WSAF lifecycle views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import WSAFTable
from repro.errors import ConfigurationError
from repro.traffic import (
    CaidaLikeConfig,
    build_caida_like_trace,
    loop,
    restrict_flows,
    scale_rate,
    thin,
)


@pytest.fixture(scope="module")
def trace():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=1000, duration=10.0, seed=151)
    )


class TestScaleRate:
    def test_doubling_rate_halves_duration(self, trace):
        fast = scale_rate(trace, 2.0)
        assert fast.duration == pytest.approx(trace.duration / 2)
        assert fast.mean_pps() == pytest.approx(2 * trace.mean_pps(), rel=1e-6)

    def test_counts_unchanged(self, trace):
        fast = scale_rate(trace, 5.0)
        assert np.array_equal(
            fast.ground_truth_packets(), trace.ground_truth_packets()
        )

    def test_slowdown(self, trace):
        slow = scale_rate(trace, 0.5)
        assert slow.duration == pytest.approx(2 * trace.duration)

    def test_invalid_factor(self, trace):
        with pytest.raises(ConfigurationError):
            scale_rate(trace, 0.0)


class TestThin:
    def test_expected_fraction_kept(self, trace):
        thinned = thin(trace, 0.25, seed=1)
        assert thinned.num_packets == pytest.approx(
            0.25 * trace.num_packets, rel=0.05
        )

    def test_keep_all_is_identity(self, trace):
        assert thin(trace, 1.0) is trace

    def test_scaled_estimates_unbiased(self, trace):
        thinned = thin(trace, 0.5, seed=2)
        truth = trace.ground_truth_packets().astype(float)
        scaled = thinned.ground_truth_packets().astype(float) / 0.5
        big = truth >= 500
        assert np.abs(scaled[big] - truth[big]).max() / truth[big].min() < 0.5
        assert scaled[big].mean() == pytest.approx(truth[big].mean(), rel=0.1)

    def test_invalid_probability(self, trace):
        with pytest.raises(ConfigurationError):
            thin(trace, 0.0)


class TestLoop:
    def test_repetition_counts(self, trace):
        tripled = loop(trace, 3, gap_seconds=1.0)
        assert tripled.num_packets == 3 * trace.num_packets
        assert np.array_equal(
            tripled.ground_truth_packets(), 3 * trace.ground_truth_packets()
        )
        assert np.all(np.diff(tripled.timestamps) >= 0)

    def test_single_repetition_is_identity(self, trace):
        assert loop(trace, 1) is trace

    def test_invalid_args(self, trace):
        with pytest.raises(ConfigurationError):
            loop(trace, 0)
        with pytest.raises(ConfigurationError):
            loop(trace, 2, gap_seconds=-1.0)


class TestRestrictFlows:
    def test_keeps_only_selected(self, trace):
        truth = trace.ground_truth_packets()
        top = np.argsort(-truth)[:5].tolist()
        sub = restrict_flows(trace, top)
        assert sub.num_flows == 5
        assert sorted(sub.ground_truth_packets()) == sorted(truth[top])
        assert sub.num_packets == truth[top].sum()

    def test_keys_preserved(self, trace):
        sub = restrict_flows(trace, [3, 7])
        assert set(map(int, sub.flows.key64)) == {
            int(trace.flows.key64[3]),
            int(trace.flows.key64[7]),
        }

    def test_invalid_selection(self, trace):
        with pytest.raises(ConfigurationError):
            restrict_flows(trace, [])
        with pytest.raises(ConfigurationError):
            restrict_flows(trace, [10**9])


class TestWSAFLifecycle:
    def _populated(self):
        table = WSAFTable(num_entries=64)
        table.accumulate(1, 10.0, 0.0, 100.0)
        table.accumulate(2, 20.0, 0.0, 200.0)
        table.accumulate(3, 30.0, 0.0, 300.0)
        return table

    def test_expire_older_than(self):
        table = self._populated()
        reclaimed = table.expire_older_than(250.0)
        assert reclaimed == 2
        assert table.lookup(3) is not None
        assert table.lookup(1) is None
        assert len(table) == 1
        assert table.gc_reclaimed == 2

    def test_expire_nothing(self):
        table = self._populated()
        assert table.expire_older_than(50.0) == 0
        assert len(table) == 3

    def test_active_entries_window(self):
        table = self._populated()
        active = {entry.key for entry in table.active_entries(now=310.0, window=120.0)}
        assert active == {2, 3}

    def test_active_entries_rejects_bad_window(self):
        table = self._populated()
        with pytest.raises(ConfigurationError):
            list(table.active_entries(now=0.0, window=0.0))
