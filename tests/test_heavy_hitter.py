"""Tests for heavy-hitter detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InstaMeasure, InstaMeasureConfig
from repro.detection import (
    HeavyHitterDetector,
    classify_detections,
    ground_truth_detection_times,
    ground_truth_heavy_hitters,
    keys_to_flow_indices,
)
from repro.errors import ConfigurationError
from repro.traffic import CaidaLikeConfig, build_caida_like_trace


@pytest.fixture(scope="module")
def trace():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=6000, duration=20.0, seed=51)
    )


class TestDetectorUnit:
    def test_requires_a_threshold(self):
        with pytest.raises(ConfigurationError):
            HeavyHitterDetector()

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ConfigurationError):
            HeavyHitterDetector(threshold_packets=0)

    def test_detects_on_first_crossing_only(self):
        detector = HeavyHitterDetector(threshold_packets=100)
        detector.on_accumulate(1, 50.0, 0.0, 1.0)
        assert 1 not in detector.packet_detections
        detector.on_accumulate(1, 120.0, 0.0, 2.0)
        assert detector.packet_detections[1] == 2.0
        detector.on_accumulate(1, 500.0, 0.0, 3.0)
        assert detector.packet_detections[1] == 2.0  # unchanged

    def test_byte_and_packet_thresholds_independent(self):
        detector = HeavyHitterDetector(threshold_packets=100, threshold_bytes=1e6)
        detector.on_accumulate(1, 150.0, 5e5, 1.0)
        assert 1 in detector.packet_detections
        assert 1 not in detector.byte_detections
        detector.on_accumulate(1, 160.0, 2e6, 2.0)
        assert detector.byte_detections[1] == 2.0


class TestGroundTruth:
    def test_crossing_times_exact(self):
        from repro.traffic import FiveTuple, FlowTable
        from repro.traffic.packet import Trace

        flows = FlowTable.from_five_tuples([FiveTuple(1, 2, 3, 4, 6)])
        trace = Trace(
            timestamps=np.array([0.0, 1.0, 2.0, 3.0]),
            flow_ids=np.zeros(4, dtype=np.int64),
            sizes=np.array([100, 100, 100, 100]),
            flows=flows,
        )
        packet_times, byte_times = ground_truth_detection_times(
            trace, threshold_packets=3, threshold_bytes=250
        )
        assert packet_times[0] == 2.0  # third packet
        assert byte_times[0] == 2.0  # cumulative 300 >= 250 at third packet

    def test_flows_below_threshold_absent(self, trace):
        packet_times, _ = ground_truth_detection_times(trace, threshold_packets=1e9)
        assert packet_times == {}

    def test_threshold_required(self, trace):
        with pytest.raises(ConfigurationError):
            ground_truth_detection_times(trace)

    def test_heavy_hitter_sets_match_counts(self, trace):
        packet_hh, byte_hh = ground_truth_heavy_hitters(
            trace, threshold_packets=1000, threshold_bytes=1e6
        )
        truth_packets = trace.ground_truth_packets()
        truth_bytes = trace.ground_truth_bytes()
        assert packet_hh == set(np.flatnonzero(truth_packets >= 1000).tolist())
        assert byte_hh == set(np.flatnonzero(truth_bytes >= 1e6).tolist())

    def test_crossing_times_never_before_possible(self, trace):
        threshold = 500
        packet_times, _ = ground_truth_detection_times(
            trace, threshold_packets=threshold
        )
        for flow, when in packet_times.items():
            first = trace.timestamps[trace.flow_ids == flow][0]
            assert when >= first


class TestEndToEndDetection:
    def test_saturation_detection_matches_truth(self, trace):
        """Fig 14 shape: negligible FNR, sub-percent FPR."""
        threshold = 1500
        detector = HeavyHitterDetector(threshold_packets=threshold)
        engine = InstaMeasure(
            InstaMeasureConfig(l1_memory_bytes=8192, wsaf_entries=1 << 14)
        )
        engine.process_trace(trace, on_accumulate=detector.on_accumulate)

        truth_hh, _ = ground_truth_heavy_hitters(trace, threshold_packets=threshold)
        assert truth_hh  # the trace must actually contain heavy hitters
        detected = keys_to_flow_indices(
            trace, set(detector.packet_detections.keys())
        )
        outcome = classify_detections(detected, truth_hh, trace.num_flows)
        assert outcome.false_negative_rate <= 0.15
        assert outcome.false_positive_rate <= 0.005

    def test_detection_lag_is_bounded_by_retention(self, trace):
        """Detection happens within ~one retention quantum of the truth."""
        threshold = 1500
        detector = HeavyHitterDetector(threshold_packets=threshold)
        engine = InstaMeasure(
            InstaMeasureConfig(l1_memory_bytes=8192, wsaf_entries=1 << 14)
        )
        engine.process_trace(trace, on_accumulate=detector.on_accumulate)
        truth_times, _ = ground_truth_detection_times(
            trace, threshold_packets=threshold
        )
        capacity = engine.regulator.retention_capacity
        checked = 0
        for flow, truth_time in truth_times.items():
            key = int(trace.flows.key64[flow])
            detected_at = detector.packet_detections.get(key)
            if detected_at is None:
                continue
            checked += 1
            # The flow's packet rate bounds the expected lag.
            total = int(trace.ground_truth_packets()[flow])
            span = float(
                trace.timestamps[trace.flow_ids == flow][-1]
                - trace.timestamps[trace.flow_ids == flow][0]
            )
            rate = total / max(span, 1e-9)
            allowed = 5 * (capacity + threshold * 0.2) / max(rate, 1e-9)
            assert detected_at - truth_time <= allowed
        assert checked > 0


class TestClassify:
    def test_perfect_detection(self):
        outcome = classify_detections({1, 2}, {1, 2}, population=10)
        assert outcome.false_positive_rate == 0.0
        assert outcome.false_negative_rate == 0.0
        assert outcome.precision == 1.0 and outcome.recall == 1.0

    def test_false_positive_rate(self):
        outcome = classify_detections({1, 2, 3}, {1}, population=102)
        assert outcome.true_positives == 1
        assert outcome.false_positives == 2
        assert outcome.false_positive_rate == pytest.approx(2 / 101)

    def test_false_negative_rate(self):
        outcome = classify_detections(set(), {1, 2}, population=10)
        assert outcome.false_negative_rate == 1.0

    def test_population_validation(self):
        with pytest.raises(ConfigurationError):
            classify_detections({1, 2, 3}, {4, 5}, population=2)

    def test_keys_roundtrip(self, trace):
        keys = {int(trace.flows.key64[5]), int(trace.flows.key64[17])}
        assert keys_to_flow_indices(trace, keys) == {5, 17}

    def test_unknown_keys_ignored(self, trace):
        assert keys_to_flow_indices(trace, {123456789}) == set()
