"""Tests for the cost model, mirror port, and queue simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InstaMeasureConfig, MultiCoreInstaMeasure
from repro.errors import ConfigurationError
from repro.simulate import CycleCostModel, MirrorPort, simulate_queues
from repro.traffic import CaidaLikeConfig, build_caida_like_trace


class TestCycleCostModel:
    def test_defaults_calibrated_to_paper_single_core(self):
        """Fig 9(a): one core processes ≈18.88 Mpps on the CAIDA mix."""
        model = CycleCostModel()
        # Measured CAIDA-like rates: ~10 % L1 saturation, ~1 % insertion.
        pps = model.single_core_pps(0.10, 0.01)
        assert 15e6 <= pps <= 23e6

    def test_regulated_pipeline_faster_than_unregulated(self):
        # If every packet hit the WSAF (ips = pps), the core would be far
        # slower — the quantitative version of the paper's motivation.
        model = CycleCostModel()
        regulated = model.single_core_pps(0.10, 0.01)
        unregulated = model.single_core_pps(1.0, 1.0)
        assert regulated > 2 * unregulated

    def test_multicore_monotone_and_sublinear(self):
        model = CycleCostModel()
        rates = [
            model.multicore_pps(w, max_load_share=1.0 / w * 1.3 if w > 1 else 1.0,
                                l1_saturation_rate=0.10, regulation_rate=0.01)
            for w in (1, 2, 3, 4)
        ]
        assert rates == sorted(rates)
        single = rates[0]
        assert rates[3] < 4 * single  # sublinear
        assert rates[3] > 1.5 * single  # but it does scale

    def test_perfect_balance_beats_skewed(self):
        model = CycleCostModel()
        balanced = model.multicore_pps(4, 0.25, 0.1, 0.01)
        skewed = model.multicore_pps(4, 0.40, 0.1, 0.01)
        assert balanced > skewed

    def test_input_validation(self):
        model = CycleCostModel()
        with pytest.raises(ConfigurationError):
            model.packet_cost_ns(0.01, 0.10)  # regulation > saturation
        with pytest.raises(ConfigurationError):
            model.multicore_pps(0, 1.0, 0.1, 0.01)
        with pytest.raises(ConfigurationError):
            model.multicore_pps(4, 0.1, 0.1, 0.01)  # share below 1/W
        with pytest.raises(ConfigurationError):
            CycleCostModel(parse_ns=0.0)

    def test_utilization_clamped(self):
        model = CycleCostModel()
        assert model.utilization(1e12, 0.1, 0.01) == 1.0
        assert model.utilization(0.0, 0.1, 0.01) == 0.0

    def test_utilization_linear_in_offered_load(self):
        model = CycleCostModel()
        low = model.utilization(1e6, 0.1, 0.01)
        high = model.utilization(2e6, 0.1, 0.01)
        assert high == pytest.approx(2 * low)


class TestMirrorPort:
    def test_unconstrained_port_drops_nothing(self):
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=500, duration=5.0, seed=41)
        )
        port = MirrorPort(capacity_bps=1e12)
        delivered, stats = port.apply(trace)
        assert stats.dropped_packets == 0
        assert delivered.num_packets == trace.num_packets

    def test_tight_port_drops(self):
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=2000, duration=2.0, seed=42)
        )
        # Offered load far above a 1 Mbps port.
        port = MirrorPort(capacity_bps=1e6, buffer_bytes=10_000)
        delivered, stats = port.apply(trace)
        assert stats.dropped_packets > 0
        assert 0.0 < stats.drop_rate < 1.0
        assert delivered.num_packets == stats.delivered_packets

    def test_delivered_rate_respects_capacity(self):
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=2000, duration=2.0, seed=43)
        )
        capacity = 20e6  # 20 Mbps
        port = MirrorPort(capacity_bps=capacity, buffer_bytes=64 * 1024)
        delivered, _stats = port.apply(trace)
        delivered_bps = delivered.total_bytes * 8 / max(delivered.duration, 1e-9)
        assert delivered_bps <= capacity * 1.2  # buffer allows a small burst

    def test_empty_trace(self):
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=10, duration=1.0, seed=44)
        ).time_slice(100.0, 200.0)
        port = MirrorPort(capacity_bps=1e9)
        delivered, stats = port.apply(trace)
        assert delivered.num_packets == 0 and stats.offered_packets == 0
        # Well-defined all the way down: no division by zero.
        assert stats.drop_rate == 0.0
        assert stats.delivered_packets == stats.dropped_packets == 0

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            MirrorPort(capacity_bps=0)
        with pytest.raises(ConfigurationError):
            MirrorPort(capacity_bps=1e9, buffer_bytes=0)

    @pytest.mark.parametrize("capacity", [-1e6, float("nan"), float("inf")])
    def test_degenerate_capacity_rejected_clearly(self, capacity):
        with pytest.raises(ConfigurationError, match="capacity_bps"):
            MirrorPort(capacity_bps=capacity)

    @pytest.mark.parametrize("buffer_bytes", [-1, float("nan"), float("inf")])
    def test_degenerate_buffer_rejected_clearly(self, buffer_bytes):
        with pytest.raises(ConfigurationError, match="buffer_bytes"):
            MirrorPort(capacity_bps=1e9, buffer_bytes=buffer_bytes)

    def test_config_errors_are_value_errors(self):
        # Callers that only know stdlib exceptions can still catch them.
        with pytest.raises(ValueError):
            MirrorPort(capacity_bps=-5)


class TestQueueSimulation:
    @pytest.fixture(scope="class")
    def trace(self):
        return build_caida_like_trace(
            CaidaLikeConfig(num_flows=3000, duration=20.0, seed=45)
        )

    def test_offered_conserves_packets(self, trace):
        system = MultiCoreInstaMeasure(
            4, InstaMeasureConfig(l1_memory_bytes=1024, wsaf_entries=1 << 12)
        )
        assignment = system.dispatch(trace)
        series = simulate_queues(trace, assignment, 4, service_pps=1e6, bucket_seconds=1.0)
        assert series.offered.sum() == trace.num_packets

    def test_fast_service_keeps_queues_empty(self, trace):
        assignment = np.zeros(trace.num_packets, dtype=np.int64)
        series = simulate_queues(trace, assignment, 1, service_pps=1e9, bucket_seconds=1.0)
        assert series.peak_queue_depth() == 0.0
        assert series.peak_utilization() < 0.01

    def test_slow_service_builds_backlog(self, trace):
        assignment = np.zeros(trace.num_packets, dtype=np.int64)
        mean_pps = trace.mean_pps()
        series = simulate_queues(
            trace, assignment, 1, service_pps=mean_pps / 10, bucket_seconds=1.0
        )
        assert series.peak_queue_depth() > 0
        assert series.peak_utilization() == 1.0

    def test_utilization_tracks_traffic_shape(self, trace):
        assignment = np.zeros(trace.num_packets, dtype=np.int64)
        series = simulate_queues(
            trace, assignment, 1, service_pps=trace.mean_pps() * 5, bucket_seconds=1.0
        )
        # Utilization correlates with offered load when never saturated.
        offered = series.offered[0]
        utilization = series.utilization[0]
        assert np.corrcoef(offered, utilization)[0, 1] > 0.99

    def test_mismatched_assignment_rejected(self, trace):
        with pytest.raises(ConfigurationError):
            simulate_queues(trace, np.zeros(3), 1, 1e6, 1.0)

    def test_mean_wait_zero_when_uncongested(self, trace):
        assignment = np.zeros(trace.num_packets, dtype=np.int64)
        series = simulate_queues(trace, assignment, 1, service_pps=1e9,
                                 bucket_seconds=1.0)
        assert series.mean_wait_seconds(1.0) == 0.0

    def test_mean_wait_grows_with_congestion(self, trace):
        assignment = np.zeros(trace.num_packets, dtype=np.int64)
        mean_pps = trace.mean_pps()
        mild = simulate_queues(trace, assignment, 1, service_pps=mean_pps * 1.2,
                               bucket_seconds=1.0)
        severe = simulate_queues(trace, assignment, 1, service_pps=mean_pps * 0.5,
                                 bucket_seconds=1.0)
        assert severe.mean_wait_seconds(1.0) > mild.mean_wait_seconds(1.0)
