"""Property tests for the batch-probed tiered and ICE-Buckets backends.

The contract mirrors ``tests/test_wsaf_batched.py`` for the flat table:
the batched engine is an *execution strategy*, never a semantics change.
For every backend, driving the same event stream through the scalar
table (one ``accumulate`` per event) and the batched table (chunked
``accumulate_batch_arrays``) must leave bit-identical state — backing
columns, cache contents and promote/demote counters for the tiered
store, quantized planes and per-bucket scales for ICE-Buckets — plus
identical per-event running totals, estimates, and accountant tallies.

The targeted cases pin the coupling points the vectorized paths have to
get right: a retier interval landing mid-chunk, a bucket upscale
triggered by the very first event of a cohort, and degenerate 1-event
chunks that ride the scalar fallback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.wsaf import WSAFTable
from repro.core.wsaf_icebuckets import IceBucketsWSAFTable
from repro.core.wsaf_storage import default_technologies
from repro.core.wsaf_tiered import TieredWSAFTable
from repro.kernels.wsaf_batched import (
    BatchedIceBucketsWSAFTable,
    BatchedWSAFTable,
)
from repro.memmodel import DRAM, AccessAccountant


def _random_events(seed, n, key_space):
    """A reproducible event stream: (key, pkts, bytes, stamp, tuple)."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(1, key_space, size=n, dtype=np.uint64)
    pkts = rng.integers(1, 40, size=n).astype(np.float64)
    byts = pkts * rng.integers(40, 1500, size=n).astype(np.float64)
    stamps = np.cumsum(rng.random(n) * 0.3)
    tuples = [(int(k) << 16) | 0xBEEF for k in keys.tolist()]
    return list(
        zip(keys.tolist(), pkts.tolist(), byts.tolist(), stamps.tolist(), tuples)
    )


def _apply_scalar(table, events):
    return [table.accumulate(*event) for event in events]


def _apply_batched(table, events, chunk):
    totals = []
    for start in range(0, len(events), chunk):
        part = events[start : start + chunk]
        totals.extend(
            table.accumulate_batch_arrays(
                np.array([e[0] for e in part], dtype=np.uint64),
                np.array([e[1] for e in part], dtype=np.float64),
                np.array([e[2] for e in part], dtype=np.float64),
                np.array([e[3] for e in part], dtype=np.float64),
                [e[4] for e in part],
            )
        )
    return totals


def _assert_flat_columns_identical(scalar: WSAFTable, batched: BatchedWSAFTable):
    """Every backing-table slot, column, and counter must match exactly."""
    assert list(scalar._occupied) == batched._occupied.tolist()
    assert list(scalar._keys) == batched._keys.tolist()
    assert list(scalar._packets) == batched._packets.tolist()
    assert list(scalar._bytes) == batched._bytes.tolist()
    assert list(scalar._timestamps) == batched._timestamps.tolist()
    assert list(scalar._chance) == batched._chance.tolist()
    assert scalar._tuples == batched._tuples
    assert scalar.size == batched.size
    assert scalar.insertions == batched.insertions
    assert scalar.updates == batched.updates
    assert scalar.evictions == batched.evictions
    assert scalar.gc_reclaimed == batched.gc_reclaimed
    assert scalar.rejected == batched.rejected


# -- tiered ---------------------------------------------------------------


def _tiered_pair(**kwargs):
    kwargs.setdefault("num_entries", 1 << 7)
    kwargs.setdefault("probe_limit", 8)
    kwargs.setdefault("gc_timeout", 5.0)
    tables, accountants = [], []
    for engine in ("scalar", "batched"):
        accountant = AccessAccountant(DRAM, technologies=default_technologies())
        tables.append(
            TieredWSAFTable(
                accountant=accountant, table_engine=engine, **kwargs
            )
        )
        accountants.append(accountant)
    return tables[0], tables[1], accountants


def _assert_tiered_identical(scalar, batched, accountants):
    _assert_flat_columns_identical(scalar.table, batched.table)
    assert scalar._cache == batched._cache
    assert scalar._hits == batched._hits
    assert scalar._misses == batched._misses
    assert scalar.op_count == batched.op_count
    assert scalar.cache_updates == batched.cache_updates
    assert scalar.promotions == batched.promotions
    assert scalar.demotions == batched.demotions
    assert scalar.estimates() == batched.estimates()
    assert accountants[0].by_label() == accountants[1].by_label()


class TestTieredEquivalence:
    @pytest.mark.parametrize("seed,chunk", [(0, 512), (1, 96), (2, 257)])
    def test_identity_across_seeds(self, seed, chunk):
        scalar, batched, accountants = _tiered_pair(
            cache_entries=8, tier_interval=64
        )
        events = _random_events(seed, 3000, key_space=1 << 14)
        assert _apply_scalar(scalar, events) == _apply_batched(
            batched, events, chunk
        )
        _assert_tiered_identical(scalar, batched, accountants)
        assert batched.promotions > 0  # the dynamics actually ran

    def test_retier_lands_mid_chunk(self):
        # Interval 10 with chunk 64: every chunk straddles several retier
        # ticks, and 64 % 10 != 0 keeps the ticks drifting through chunk
        # positions — the segment-splitting path, not the aligned case.
        scalar, batched, accountants = _tiered_pair(
            cache_entries=4, tier_interval=10
        )
        events = _random_events(7, 2000, key_space=1 << 10)
        assert _apply_scalar(scalar, events) == _apply_batched(
            batched, events, chunk=64
        )
        _assert_tiered_identical(scalar, batched, accountants)
        assert batched.promotions > 0
        assert batched.demotions > 0

    def test_single_event_chunks(self):
        scalar, batched, accountants = _tiered_pair(
            cache_entries=4, tier_interval=16
        )
        events = _random_events(11, 400, key_space=1 << 8)
        assert _apply_scalar(scalar, events) == _apply_batched(
            batched, events, chunk=1
        )
        _assert_tiered_identical(scalar, batched, accountants)

    def test_eviction_pressure(self):
        scalar, batched, accountants = _tiered_pair(
            num_entries=1 << 5,
            probe_limit=4,
            cache_entries=4,
            tier_interval=32,
        )
        events = _random_events(3, 4000, key_space=1 << 16)
        assert _apply_scalar(scalar, events) == _apply_batched(
            batched, events, chunk=200
        )
        _assert_tiered_identical(scalar, batched, accountants)
        assert batched.evictions > 0


# -- ICE-Buckets ----------------------------------------------------------


def _ice_pair(**kwargs):
    kwargs.setdefault("num_entries", 1 << 7)
    kwargs.setdefault("probe_limit", 8)
    kwargs.setdefault("gc_timeout", 5.0)
    kwargs.setdefault("bucket_slots", 8)
    kwargs.setdefault("counter_bits", 8)
    return (
        IceBucketsWSAFTable(**kwargs),
        BatchedIceBucketsWSAFTable(**kwargs),
    )


def _assert_ice_identical(scalar, batched):
    _assert_flat_columns_identical(scalar, batched)
    assert list(scalar._qpackets) == np.asarray(batched._qpackets).tolist()
    assert list(scalar._qbytes) == np.asarray(batched._qbytes).tolist()
    assert scalar._scale_packets == batched._scale_packets
    assert scalar._scale_bytes == batched._scale_bytes
    assert scalar.upscales == batched.upscales
    assert scalar.estimates() == batched.estimates()


class TestIceBucketsEquivalence:
    @pytest.mark.parametrize("seed,chunk", [(0, 512), (1, 96), (2, 257)])
    def test_identity_across_seeds(self, seed, chunk):
        scalar, batched = _ice_pair()
        events = _random_events(seed, 3000, key_space=1 << 14)
        assert _apply_scalar(scalar, events) == _apply_batched(
            batched, events, chunk
        )
        _assert_ice_identical(scalar, batched)
        assert batched.upscales > 0

    def test_upscale_on_first_event_of_cohort(self):
        # counter_bits=4 (max 15): the very first event of a fresh key's
        # cohort already exceeds the counter range at scale 0, so the
        # bucket must upscale on insert — before any vectorized chain
        # arithmetic could have run for that cohort.
        scalar, batched = _ice_pair(counter_bits=4)
        events = [
            (101, 400.0, 400.0 * 1000.0, 0.1, None),
            (101, 3.0, 3.0 * 800.0, 0.2, None),
            (202, 1.0, 64.0, 0.3, None),
            (202, 900.0, 900.0 * 60.0, 0.4, None),
        ] + _random_events(5, 500, key_space=1 << 8)
        assert _apply_scalar(scalar, events) == _apply_batched(
            batched, events, chunk=128
        )
        _assert_ice_identical(scalar, batched)
        assert batched.upscales > 0

    def test_single_event_chunks(self):
        scalar, batched = _ice_pair(counter_bits=6)
        events = _random_events(11, 400, key_space=1 << 8)
        assert _apply_scalar(scalar, events) == _apply_batched(
            batched, events, chunk=1
        )
        _assert_ice_identical(scalar, batched)

    def test_eviction_pressure_with_tiny_counters(self):
        scalar, batched = _ice_pair(
            num_entries=1 << 5,
            probe_limit=4,
            bucket_slots=4,
            counter_bits=5,
        )
        events = _random_events(3, 4000, key_space=1 << 16)
        assert _apply_scalar(scalar, events) == _apply_batched(
            batched, events, chunk=200
        )
        _assert_ice_identical(scalar, batched)
        assert batched.evictions > 0
        assert batched.upscales > 0
