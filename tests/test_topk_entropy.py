"""Tests for Top-K identification and entropy estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection import (
    flow_size_entropy,
    normalized_entropy,
    topk_flows,
    topk_recall,
)
from repro.detection.topk import topk_recall_series
from repro.errors import ConfigurationError


class TestTopK:
    def test_topk_simple(self):
        values = np.array([5, 1, 9, 3, 7])
        assert topk_flows(values, 2) == {2, 4}

    def test_topk_larger_than_population(self):
        assert topk_flows(np.array([1, 2]), 10) == {0, 1}

    def test_topk_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            topk_flows(np.array([1.0]), 0)

    def test_recall_perfect(self):
        truth = np.array([10, 20, 30, 40])
        assert topk_recall(truth, truth, 2) == 1.0

    def test_recall_partial(self):
        truth = np.arange(10, dtype=float)
        estimated = truth.copy()
        estimated[9] = 0.0  # the top flow vanishes from the estimate
        assert topk_recall(estimated, truth, 2) == pytest.approx(0.5)

    def test_recall_requires_alignment(self):
        with pytest.raises(ConfigurationError):
            topk_recall(np.array([1.0]), np.array([1.0, 2.0]), 1)

    def test_recall_series(self):
        truth = np.arange(100, dtype=float)
        series = topk_recall_series(truth, truth, [1, 10, 50])
        assert series == {1: 1.0, 10: 1.0, 50: 1.0}

    def test_recall_robust_to_small_noise(self):
        rng = np.random.default_rng(0)
        truth = np.sort(rng.pareto(1.5, size=5000) * 100 + 1)[::-1]
        estimated = truth * rng.normal(1.0, 0.02, size=truth.shape)
        assert topk_recall(estimated, truth, 100) >= 0.9


class TestEntropy:
    def test_uniform_entropy(self):
        sizes = np.full(8, 100.0)
        assert flow_size_entropy(sizes) == pytest.approx(3.0)
        assert normalized_entropy(sizes) == pytest.approx(1.0)

    def test_concentrated_entropy_lower(self):
        even = np.full(16, 10.0)
        skewed = np.array([1000.0] + [1.0] * 15)
        assert flow_size_entropy(skewed) < flow_size_entropy(even)
        assert normalized_entropy(skewed) < 0.5

    def test_single_flow(self):
        assert normalized_entropy(np.array([42.0])) == 0.0

    def test_zero_flows_ignored(self):
        with_zeros = np.array([10.0, 0.0, 10.0, 0.0])
        assert flow_size_entropy(with_zeros) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            flow_size_entropy(np.array([]))
        with pytest.raises(ConfigurationError):
            normalized_entropy(np.array([0.0]))

    def test_ddos_collapses_entropy(self):
        """The anomaly signal: one dominant flow drops normalized entropy."""
        rng = np.random.default_rng(1)
        background = rng.integers(1, 50, size=2000).astype(float)
        before = normalized_entropy(background)
        attacked = np.append(background, background.sum() * 20)
        after = normalized_entropy(attacked)
        assert after < before * 0.6
