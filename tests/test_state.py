"""The serializable measurement-state layer: capture, codec, merge.

The contracts under test are the state layer's tentpole guarantees:

* ``capture_engine`` → ``to_bytes``/``save`` → ``from_bytes``/``load`` →
  ``restore_engine`` is an exact round trip for both WSAF backing stores,
  including a mid-stream RNG cursor (save → load → resume-ingest is
  bit-identical to an uninterrupted run).
* The wire format is versioned and self-describing: wrong magic, wrong
  version, truncation, and trailing garbage are all rejected loudly.
* ``merge`` has well-defined semantics: disjoint key ranges concatenate
  (and ``mode="disjoint"`` refuses overlapping inputs), overlapping
  ranges counter-sum per key with insertion/update reconciliation.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import InstaMeasure, InstaMeasureConfig
from repro.errors import SnapshotError
from repro.pipeline import TraceChunkSource, run_pipeline
from repro.state import (
    MeasurementSnapshot,
    SNAPSHOT_VERSION,
    capture_engine,
    capture_regulator,
    from_bytes,
    load,
    merge,
    regulator_sketches,
    restore_engine,
    restore_regulator,
    save,
    to_bytes,
)
from repro.state.codec import MAGIC
from repro.traffic import CaidaLikeConfig, build_caida_like_trace


@pytest.fixture(scope="module")
def trace():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=900, duration=6.0, seed=13)
    )


def _config(wsaf_engine: str, **overrides) -> InstaMeasureConfig:
    base = dict(
        l1_memory_bytes=2 * 1024,
        wsaf_entries=1 << 11,
        seed=3,
        wsaf_engine=wsaf_engine,
    )
    base.update(overrides)
    return InstaMeasureConfig(**base)


def _measured(trace, wsaf_engine: str, **overrides) -> InstaMeasure:
    engine = InstaMeasure(_config(wsaf_engine, **overrides))
    engine.process_trace(trace)
    return engine


def _tamper_header(payload: bytes, **fields) -> bytes:
    """Re-encode ``payload`` with header fields overwritten."""
    header_len = int.from_bytes(payload[len(MAGIC) : len(MAGIC) + 8], "little")
    body_start = len(MAGIC) + 8 + header_len
    header = json.loads(payload[len(MAGIC) + 8 : body_start].decode())
    header.update(fields)
    encoded = json.dumps(header, separators=(",", ":")).encode()
    return (
        MAGIC
        + len(encoded).to_bytes(8, "little")
        + encoded
        + payload[body_start:]
    )


class TestRoundTrip:
    @pytest.mark.parametrize("wsaf_engine", ["scalar", "batched"])
    def test_bytes_round_trip_is_exact(self, trace, wsaf_engine):
        engine = _measured(trace, wsaf_engine)
        snapshot = capture_engine(engine)
        recovered = from_bytes(to_bytes(snapshot))

        assert to_bytes(recovered) == to_bytes(snapshot)
        assert recovered.estimates() == engine.estimates()
        restored = restore_engine(recovered)
        assert restored.estimates() == engine.estimates()
        assert len(restored.wsaf) == len(engine.wsaf)
        assert restored.wsaf.insertions == engine.wsaf.insertions
        assert restored.regulator.stats.packets == engine.regulator.stats.packets
        for live, back in zip(
            regulator_sketches(engine.regulator),
            regulator_sketches(restored.regulator),
        ):
            assert np.array_equal(live.words_array(), back.words_array())

    @pytest.mark.parametrize("wsaf_engine", ["scalar", "batched"])
    def test_file_round_trip(self, trace, wsaf_engine, tmp_path):
        engine = _measured(trace, wsaf_engine)
        snapshot = capture_engine(engine)
        path = tmp_path / "state.snap"
        save(snapshot, path)
        assert load(path).estimates() == snapshot.estimates()

    def test_restored_engine_keeps_measuring_identically(self, trace):
        """A restored engine is a drop-in: same future behavior."""
        first = trace.time_slice(0.0, 3.0)
        second = trace.time_slice(3.0, trace.duration + 1.0)
        straight = InstaMeasure(_config("scalar"))
        straight.process_trace(first)
        straight.process_trace(second)

        engine = InstaMeasure(_config("scalar"))
        engine.process_trace(first)
        resumed = restore_engine(from_bytes(to_bytes(capture_engine(engine))))
        resumed.process_trace(second)
        assert resumed.estimates() == straight.estimates()

    def test_cross_store_restore(self, trace):
        """Scalar capture restores into the batched store exactly."""
        snapshot = capture_engine(_measured(trace, "scalar"))
        snapshot.config["wsaf_engine"] = "batched"
        restored = restore_engine(snapshot)
        assert restored.estimates() == _measured(trace, "scalar").estimates()

    def test_multilayer_regulator_round_trip(self, trace):
        engine = _measured(trace, "scalar", num_layers=3, engine="scalar")
        snapshot = from_bytes(to_bytes(capture_engine(engine)))
        restored = restore_engine(snapshot)
        for live, back in zip(
            regulator_sketches(engine.regulator),
            regulator_sketches(restored.regulator),
        ):
            assert np.array_equal(live.words_array(), back.words_array())
        assert restored.estimates() == engine.estimates()

    def test_probe_placement_restore(self, trace):
        """Records whose slot is unknown re-probe to the same estimates."""
        snapshot = capture_engine(_measured(trace, "scalar"))
        snapshot.wsaf.slots = np.full(
            snapshot.wsaf.num_records, -1, dtype=np.int64
        )
        restored = restore_engine(snapshot)
        assert restored.estimates() == snapshot.estimates()

    def test_regulator_capture_restore_standalone(self, trace):
        engine = _measured(trace, "scalar")
        fresh = InstaMeasure(_config("scalar"))
        restore_regulator(fresh.regulator, capture_regulator(engine.regulator))
        for live, back in zip(
            regulator_sketches(engine.regulator),
            regulator_sketches(fresh.regulator),
        ):
            assert np.array_equal(live.words_array(), back.words_array())
        assert fresh.regulator.stats.insertions == engine.regulator.stats.insertions


class TestMidStreamResume:
    @pytest.mark.parametrize("wsaf_engine", ["scalar", "batched"])
    def test_save_load_resume_bit_identical(self, trace, wsaf_engine, tmp_path):
        chunks = list(TraceChunkSource(trace, chunk_size=1_500))
        assert len(chunks) >= 4

        reference = InstaMeasure(_config(wsaf_engine))
        for chunk in chunks:
            reference.ingest(chunk)
        reference.finalize()

        engine = InstaMeasure(_config(wsaf_engine))
        for chunk in chunks[:2]:
            engine.ingest(chunk)
        path = tmp_path / "midstream.snap"
        save(engine.snapshot(), path)

        resumed = InstaMeasure.from_snapshot(load(path))
        for chunk in chunks[2:]:
            resumed.ingest(chunk)
        result = resumed.finalize()

        assert result.packets == trace.num_packets
        assert resumed.estimates() == reference.estimates()
        assert to_bytes(capture_engine(resumed)) == to_bytes(
            capture_engine(reference)
        )

    @pytest.mark.parametrize("wsaf_engine", ["scalar", "batched"])
    def test_unknown_length_save_load_resume_bit_identical(
        self, trace, wsaf_engine, tmp_path
    ):
        """Unbounded streams checkpoint mid-flight via the block cursor."""
        chunks = list(TraceChunkSource(trace, chunk_size=1_500))
        assert len(chunks) >= 4

        reference = InstaMeasure(_config(wsaf_engine))
        reference.begin_stream()
        for chunk in chunks:
            reference.ingest(chunk)
        reference.finalize()

        engine = InstaMeasure(_config(wsaf_engine))
        engine.begin_stream()
        for chunk in chunks[:2]:
            engine.ingest(chunk)
        path = tmp_path / "midstream-unknown.snap"
        save(engine.snapshot(), path)

        resumed = InstaMeasure.from_snapshot(load(path))
        for chunk in chunks[2:]:
            resumed.ingest(chunk)
        result = resumed.finalize()

        assert result.packets == trace.num_packets
        assert resumed.estimates() == reference.estimates()
        assert to_bytes(capture_engine(resumed)) == to_bytes(
            capture_engine(reference)
        )

    def test_unknown_length_chunking_invariant(self, trace):
        """Block draws make unbounded streams independent of chunking."""

        def run(chunk_size):
            engine = InstaMeasure(_config("scalar"))
            engine.begin_stream()
            for chunk in TraceChunkSource(trace, chunk_size=chunk_size):
                engine.ingest(chunk)
            engine.finalize()
            return engine

        small, large = run(700), run(2_900)
        assert small.estimates() == large.estimates()
        assert to_bytes(capture_engine(small)) == to_bytes(
            capture_engine(large)
        )


class TestCodecRejection:
    @pytest.fixture(scope="class")
    def payload(self, trace):
        return to_bytes(capture_engine(_measured(trace, "scalar")))

    def test_version_mismatch_rejected(self, payload):
        tampered = _tamper_header(payload, version=SNAPSHOT_VERSION + 1)
        with pytest.raises(SnapshotError, match="version"):
            from_bytes(tampered)

    def test_bad_magic_rejected(self, payload):
        with pytest.raises(SnapshotError):
            from_bytes(b"NOTSNAP\x00" + payload[len(MAGIC) :])

    def test_truncated_payload_rejected(self, payload):
        with pytest.raises(SnapshotError):
            from_bytes(payload[: len(payload) - 16])

    def test_trailing_garbage_rejected(self, payload):
        with pytest.raises(SnapshotError):
            from_bytes(payload + b"\x00" * 8)

    def test_empty_input_rejected(self):
        with pytest.raises(SnapshotError):
            from_bytes(b"")


class TestMerge:
    def test_overlap_merge_counter_sums(self, trace):
        """Two full-trace runs merge to per-key doubled estimates."""
        a = capture_engine(_measured(trace, "scalar"))
        b = capture_engine(_measured(trace, "batched"))
        merged = merge([a, b], mode="overlap")

        base = a.estimates()
        assert b.estimates() == base  # the stores are state-identical
        got = merged.estimates()
        assert set(got) == set(base)
        for key, (packets, bytes_) in base.items():
            assert got[key] == (2 * packets, 2 * bytes_)

        duplicates = (
            a.wsaf.num_records + b.wsaf.num_records - merged.wsaf.num_records
        )
        assert merged.wsaf.num_records == len(set(base))
        assert merged.wsaf.insertions == (
            a.wsaf.insertions + b.wsaf.insertions - duplicates
        )
        assert merged.wsaf.updates == (
            a.wsaf.updates + b.wsaf.updates + duplicates
        )
        assert merged.regulator.packets == (
            a.regulator.packets + b.regulator.packets
        )
        assert merged.shards_merged == 2
        # The merged state is restorable: all slots re-probe.
        assert restore_engine(merged).estimates() == got

    def test_disjoint_mode_rejects_overlap(self, trace):
        a = capture_engine(_measured(trace, "scalar"))
        b = capture_engine(_measured(trace, "scalar"))
        with pytest.raises(SnapshotError, match="share flow keys"):
            merge([a, b], mode="disjoint")

    def test_auto_mode_picks_overlap(self, trace):
        a = capture_engine(_measured(trace, "scalar"))
        b = capture_engine(_measured(trace, "scalar"))
        merged = merge([a, b])
        base = a.estimates()
        assert merged.estimates() == {
            key: (2 * p, 2 * b_) for key, (p, b_) in base.items()
        }

    def test_geometry_mismatch_rejected(self, trace):
        a = capture_engine(_measured(trace, "scalar"))
        b = capture_engine(_measured(trace, "scalar", wsaf_entries=1 << 12))
        with pytest.raises(SnapshotError, match="wsaf_entries"):
            merge([a, b])

    def test_seed_mismatch_rejected_for_disjoint(self, trace):
        a = capture_engine(_measured(trace, "scalar"))
        b = capture_engine(_measured(trace, "scalar", seed=99))
        with pytest.raises(SnapshotError, match="seed"):
            merge([a, b], mode="disjoint")
        # Overlap mode tolerates differing seeds (counters still sum).
        merged = merge([a, b], mode="overlap")
        assert merged.wsaf.num_records >= a.wsaf.num_records

    def test_in_progress_stream_rejected(self, trace):
        engine = InstaMeasure(_config("scalar"))
        chunks = list(TraceChunkSource(trace, chunk_size=2_000))
        engine.ingest(chunks[0])
        mid = capture_engine(engine)
        with pytest.raises(SnapshotError, match="in-progress"):
            merge([mid, mid])

    def test_merge_nothing_rejected(self):
        with pytest.raises(SnapshotError, match="zero"):
            merge([])

    def test_single_snapshot_merge_is_identity_on_estimates(self, trace):
        a = capture_engine(_measured(trace, "scalar"))
        merged = merge([a])
        assert merged.estimates() == a.estimates()
        assert merged.wsaf.insertions == a.wsaf.insertions


class TestSnapshotEstimates:
    def test_estimates_match_live_table(self, trace):
        engine = _measured(trace, "scalar")
        snapshot = capture_engine(engine)
        assert snapshot.estimates() == engine.estimates()
        keys = trace.flows.key64[:50]
        assert snapshot.estimates(flow_keys=keys) == engine.estimates(
            flow_keys=keys
        )

    def test_pipeline_snapshot_path(self, trace):
        """``engine.snapshot()`` after a pipeline run captures everything."""
        engine = InstaMeasure(_config("batched"))
        run_pipeline(engine, trace, chunk_size=2_500)
        snapshot = engine.snapshot()
        assert isinstance(snapshot, MeasurementSnapshot)
        assert snapshot.stream is None  # finalize closed the stream
        assert snapshot.estimates() == engine.estimates()
