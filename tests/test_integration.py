"""End-to-end integration tests across package boundaries."""

from __future__ import annotations

import numpy as np

from repro.analysis import standard_error, traffic_share_curve
from repro.core import (
    InstaMeasure,
    InstaMeasureConfig,
    MultiCoreInstaMeasure,
)
from repro.detection import (
    HeavyHitterDetector,
    classify_detections,
    ground_truth_heavy_hitters,
    keys_to_flow_indices,
    topk_recall,
)
from repro.simulate import MirrorPort
from repro.traffic import (
    AttackConfig,
    CaidaLikeConfig,
    build_caida_like_trace,
    inject_attack_flows,
    load_trace,
    save_trace,
)


def _config(**overrides):
    defaults = dict(l1_memory_bytes=8192, wsaf_entries=1 << 14, seed=0)
    defaults.update(overrides)
    return InstaMeasureConfig(**defaults)


class TestFullPipeline:
    def test_save_load_measure_detect(self, tmp_path):
        """gen → persist → reload → measure → detect → score."""
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=4000, duration=15.0, seed=101)
        )
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        reloaded = load_trace(path)

        detector = HeavyHitterDetector(threshold_packets=1000)
        engine = InstaMeasure(_config())
        engine.process_trace(reloaded, on_accumulate=detector.on_accumulate)

        truth_hh, _ = ground_truth_heavy_hitters(reloaded, threshold_packets=1000)
        detected = keys_to_flow_indices(reloaded, set(detector.packet_detections))
        outcome = classify_detections(detected, truth_hh, reloaded.num_flows)
        assert outcome.recall > 0.8
        assert outcome.false_positive_rate < 0.01

    def test_runs_are_deterministic(self):
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=2000, duration=8.0, seed=102)
        )
        estimates = []
        for _ in range(2):
            engine = InstaMeasure(_config(seed=5))
            engine.process_trace(trace)
            est, _ = engine.estimates_for(trace)
            estimates.append(est)
        assert np.array_equal(estimates[0], estimates[1])

    def test_mirror_then_multicore_then_topk(self):
        """The campus-style chain with a multi-core engine."""
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=5000, duration=15.0, seed=103)
        )
        port = MirrorPort(capacity_bps=100e6, buffer_bytes=1 << 20)
        delivered, _stats = port.apply(trace)

        system = MultiCoreInstaMeasure(3, _config())
        result = system.process_trace(delivered)
        assert result.packets == delivered.num_packets

        est, _ = system.estimates_for(delivered)
        truth = delivered.ground_truth_packets().astype(float)
        assert topk_recall(est, truth, 20) >= 0.8

    def test_attack_injection_end_to_end(self):
        background = build_caida_like_trace(
            CaidaLikeConfig(num_flows=2000, duration=6.0, seed=104)
        )
        attacked, injected = inject_attack_flows(
            background,
            AttackConfig(rates_pps=[20_000.0], duration=2.0, start_time=1.0),
        )
        detector = HeavyHitterDetector(threshold_packets=2000)
        engine = InstaMeasure(_config())
        engine.process_trace(attacked, on_accumulate=detector.on_accumulate)
        attack_key = int(attacked.flows.key64[injected[0]])
        assert attack_key in detector.packet_detections

    def test_metrics_compose_over_pipeline(self):
        """Analysis utilities operate cleanly on engine output."""
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=3000, duration=10.0, seed=105)
        )
        engine = InstaMeasure(_config())
        engine.process_trace(trace)
        est, _ = engine.estimates_for(trace)
        truth = trace.ground_truth_packets().astype(float)

        big = truth >= 1000
        assert standard_error(est[big], truth[big]) < 0.15
        (top_share,) = traffic_share_curve(truth, [0.01])
        assert top_share > 0.3


class TestCrossComponentConsistency:
    def test_insertion_counters_agree_everywhere(self):
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=2500, duration=8.0, seed=106)
        )
        events = []
        engine = InstaMeasure(_config())
        result = engine.process_trace(
            trace, on_accumulate=lambda k, p, b, t: events.append(k)
        )
        assert len(events) == result.insertions
        assert result.insertions == result.regulator_stats.insertions
        assert (
            engine.wsaf.insertions + engine.wsaf.updates + engine.wsaf.rejected
            == result.insertions
        )
        assert engine.regulator.l1.saturations == result.regulator_stats.l1_saturations

    def test_l2_bank_totals_match_l1_saturations(self):
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=2500, duration=8.0, seed=107)
        )
        engine = InstaMeasure(_config())
        result = engine.process_trace(trace)
        l2_encoded = sum(bank.packets_encoded for bank in engine.regulator.l2)
        assert l2_encoded == result.regulator_stats.l1_saturations
        l2_saturated = sum(bank.saturations for bank in engine.regulator.l2)
        assert l2_saturated == result.insertions

    def test_byte_estimates_scale_with_packet_estimates(self):
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=2500, duration=8.0, seed=108)
        )
        engine = InstaMeasure(_config())
        engine.process_trace(trace)
        est_packets, est_bytes = engine.estimates_for(trace)
        visible = est_packets > 0
        mean_size = est_bytes[visible] / est_packets[visible]
        # Implied packet sizes stay within wire bounds.
        assert mean_size.min() >= 40
        assert mean_size.max() <= 1514
