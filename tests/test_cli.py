"""Tests for the ``instameasure`` CLI."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "trace.npz"
    code = main(
        [
            "gen-trace", "caida",
            "--flows", "1500",
            "--duration", "8",
            "--seed", "3",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


class TestGenTrace:
    def test_campus_trace(self, tmp_path, capsys):
        path = tmp_path / "campus.npz"
        code = main(
            ["gen-trace", "campus", "--flows", "800", "--hours", "12",
             "--out", str(path)]
        )
        assert code == 0
        assert path.exists()
        assert "packets" in capsys.readouterr().out

    def test_output_mentions_counts(self, trace_path, capsys):
        main(["summarize", str(trace_path)])
        out = capsys.readouterr().out
        assert "L4 flows" in out
        assert "1,500" in out


class TestRun:
    def test_run_reports_regulation(self, trace_path, capsys):
        code = main(["run", str(trace_path), "--l1-kb", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "regulation rate" in out
        assert "WSAF flows" in out

    def test_missing_trace_is_handled(self, tmp_path, capsys):
        code = main(["run", str(tmp_path / "absent.npz")])
        assert code == 1

    def test_sharded_run_matches_single(self, trace_path, capsys):
        code = main(
            ["run", str(trace_path), "--l1-kb", "4", "--wsaf-bits", "12"]
        )
        assert code == 0
        single_out = capsys.readouterr().out
        code = main(
            ["run", str(trace_path), "--l1-kb", "4", "--wsaf-bits", "12",
             "--shards", "4"]
        )
        assert code == 0
        sharded_out = capsys.readouterr().out
        assert "shard load shares" in sharded_out

        def metric(out: str, name: str) -> str:
            for line in out.splitlines():
                if line.startswith(name):
                    # Column padding varies with the widest row label,
                    # so compare whitespace-normalized values.
                    return " ".join(line[len(name):].split())
            raise AssertionError(f"{name!r} not in output")

        # The sharded run reports the same measurement, exactly.
        for name in ("packets", "WSAF flows", "std error"):
            assert metric(sharded_out, name) == metric(single_out, name)


class TestRunBackends:
    @pytest.mark.parametrize("backend", ["tiered", "icebuckets"])
    def test_run_with_backend(self, trace_path, capsys, backend):
        code = main(
            ["run", str(trace_path), "--l1-kb", "4", "--wsaf-bits", "12",
             "--wsaf-backend", backend]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "WSAF flows" in out

    def test_unknown_backend_rejected(self, trace_path):
        with pytest.raises(SystemExit):
            main(["run", str(trace_path), "--wsaf-backend", "bogus"])


class TestBenchShards:
    def test_quick_shards_prints_stage_table(self, monkeypatch, capsys):
        # Patch the heavy benchmark out; assert the CLI forwards the
        # requested count and renders the stage-breakdown table.
        from repro import cli

        calls = {}

        def fake_run_sharded_benchmark(trace, rounds, shard_counts, record):
            calls["shard_counts"] = shard_counts
            calls["record"] = record
            rows = [
                {
                    "shards": n,
                    "seconds": 0.5 / n,
                    "stages": {
                        "route_s": 0.01,
                        "ipc_s": 0.02,
                        "ingest_s": 0.4 / n,
                        "merge_s": 0.01,
                    },
                }
                for n in shard_counts
            ]
            return {
                "rows": rows,
                "report": "fake report",
                "scaling": {n: float(n) for n in shard_counts},
                "inproc_overhead": 1.0,
            }

        bench = cli._load_bench_module()
        monkeypatch.setattr(
            bench, "run_sharded_benchmark", fake_run_sharded_benchmark
        )
        monkeypatch.setattr(cli, "_load_bench_module", lambda: bench)
        code = main(["bench", "--quick", "--shards", "3"])
        assert code == 0
        assert calls["shard_counts"] == (1, 3)
        assert calls["record"] is False
        out = capsys.readouterr().out
        assert "Sharded stage breakdown" in out
        assert "route ms" in out

    def test_full_shards_forwards_counts(self, monkeypatch, capsys):
        from repro import cli

        calls = {}

        def fake_run_sharded_benchmark(trace, rounds, shard_counts, record):
            calls["shard_counts"] = shard_counts
            calls["rounds"] = rounds
            rows = [
                {
                    "shards": n,
                    "seconds": 0.5 / n,
                    "stages": {
                        "route_s": 0.01,
                        "ipc_s": 0.02,
                        "ingest_s": 0.4 / n,
                        "merge_s": 0.01,
                    },
                }
                for n in shard_counts
            ]
            return {
                "rows": rows,
                "report": "fake report",
                "scaling": {n: float(n) for n in shard_counts},
                "inproc_overhead": 1.0,
            }

        bench = cli._load_bench_module()
        monkeypatch.setattr(
            bench, "run_sharded_benchmark", fake_run_sharded_benchmark
        )
        monkeypatch.setattr(cli, "_load_bench_module", lambda: bench)
        monkeypatch.setattr(
            cli, "build_caida_like_trace", lambda config: object()
        )
        code = main(["bench", "--shards", "4", "--no-record"])
        assert code == 0
        # The requested count joins the baseline and the default ladder
        # up to it — previously --shards was parsed and then ignored.
        assert calls["shard_counts"] == (1, 2, 4)
        assert calls["rounds"] == bench.SHARD_ROUNDS
        assert "Sharded stage breakdown" in capsys.readouterr().out


class TestSnapshot:
    def test_save_load_round_trip(self, trace_path, tmp_path, capsys):
        snap_path = tmp_path / "state.snap"
        code = main(
            ["snapshot", "save", str(trace_path), "--out", str(snap_path),
             "--l1-kb", "4", "--wsaf-bits", "12"]
        )
        assert code == 0
        assert snap_path.exists()
        assert "WSAF records" in capsys.readouterr().out

        code = main(
            ["snapshot", "load", str(snap_path), "--trace", str(trace_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "instameasure" in out
        assert "std error" in out

    def test_sharded_save_equals_single_save(self, trace_path, tmp_path):
        single = tmp_path / "single.snap"
        sharded = tmp_path / "sharded.snap"
        assert main(
            ["snapshot", "save", str(trace_path), "--out", str(single),
             "--l1-kb", "4", "--wsaf-bits", "12"]
        ) == 0
        assert main(
            ["snapshot", "save", str(trace_path), "--out", str(sharded),
             "--l1-kb", "4", "--wsaf-bits", "12", "--shards", "3"]
        ) == 0
        from repro.state import load

        assert load(sharded).estimates() == load(single).estimates()

    def test_corrupt_snapshot_is_handled(self, tmp_path, capsys):
        bad = tmp_path / "bad.snap"
        bad.write_bytes(b"not a snapshot")
        code = main(["snapshot", "load", str(bad)])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestHeavyHitter:
    def test_packet_threshold(self, trace_path, capsys):
        code = main(["hh", str(trace_path), "--threshold-packets", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FPR" in out and "packets" in out

    def test_byte_threshold(self, trace_path, capsys):
        code = main(["hh", str(trace_path), "--threshold-bytes", "300000"])
        assert code == 0
        assert "bytes" in capsys.readouterr().out

    def test_requires_a_threshold(self, trace_path, capsys):
        code = main(["hh", str(trace_path)])
        assert code == 2


class TestTopK:
    def test_topk_table(self, trace_path, capsys):
        code = main(["topk", str(trace_path), "-k", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Top-5 flows" in out
        assert "est pkts" in out
        # 5 ranked rows plus header/divider lines.
        assert out.count("0x") >= 10  # source + destination per row


class TestSpreaders:
    def test_spreaders_runs(self, trace_path, capsys):
        code = main(["spreaders", str(trace_path), "--min-destinations", "1"])
        assert code == 0
        assert "fan-out" in capsys.readouterr().out


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self, trace_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "summarize", str(trace_path)],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "L4 flows" in proc.stdout

    def test_python_dash_m_repro_usage_error(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 2
        assert "usage" in proc.stderr.lower()
