"""The closed-loop backpressure control plane.

Contracts under test, layer by layer:

* policies (:mod:`repro.pipeline.control`): ``none`` passes everything,
  ``shed`` thins to the target with seed-stable sampling, ``degrade``
  batches under pressure and restores after the cooldown;
* mechanism: the thinning mask is a pure function of (seed, global
  position) — identical across chunk geometries — and the governor
  rebases kept chunks onto a dense kept stream;
* drivers: ``--load-policy none`` is byte-identical to no controller at
  all, shed runs are byte-identical across repeats, batching-only
  degrade is byte-identical to ``none`` (chunking invariance), and a
  sharded shed run equals the single-process one exactly;
* service: the daemon accounts offered vs measured packets and surfaces
  controller stats; the control socket renders them as Prometheus text.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import InstaMeasure, InstaMeasureConfig
from repro.errors import ConfigurationError
from repro.pipeline import (
    ChunkGovernor,
    DegradeController,
    LOAD_POLICY_CHOICES,
    LoadSignal,
    NoLoadController,
    Pipeline,
    ShardedPipeline,
    ShedController,
    TraceChunkSource,
    build_load_controller,
    coalesce_chunks,
    run_pipeline,
    thin_chunk,
    thin_mask,
)
from repro.state.codec import to_bytes
from repro.traffic import CaidaLikeConfig, build_caida_like_trace


@pytest.fixture(scope="module")
def trace():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=1_500, duration=6.0, seed=21)
    )


def _config(**overrides) -> InstaMeasureConfig:
    base = dict(l1_memory_bytes=2_048, wsaf_entries=1 << 11, seed=5)
    base.update(overrides)
    return InstaMeasureConfig(**base)


def _signal(offered_pps: float, packets: int = 1_000) -> LoadSignal:
    return LoadSignal(
        chunk_index=0, offered_packets=packets, offered_pps=offered_pps
    )


class TestPolicies:
    def test_none_always_passes(self):
        controller = NoLoadController()
        for pps in (0.0, 1e3, 1e9, float("inf")):
            decision = controller.decide(_signal(pps))
            assert decision.action == "pass"
            assert decision.keep_fraction == 1.0
            assert decision.batch_chunks == 1

    def test_shed_passes_under_target(self):
        controller = ShedController(target_pps=1_000.0)
        assert controller.decide(_signal(999.0)).action == "pass"
        assert controller.decide(_signal(1_000.0)).action == "pass"

    def test_shed_thins_proportionally_over_target(self):
        controller = ShedController(target_pps=1_000.0)
        decision = controller.decide(_signal(4_000.0))
        assert decision.action == "thin"
        assert decision.keep_fraction == pytest.approx(0.25)

    def test_shed_drops_on_infinite_rate_without_floor(self):
        controller = ShedController(target_pps=1_000.0)
        assert controller.decide(_signal(float("inf"))).action == "drop"

    def test_shed_min_keep_floors_the_sample(self):
        controller = ShedController(target_pps=1_000.0, min_keep=0.1)
        assert controller.decide(
            _signal(1e9)
        ).keep_fraction == pytest.approx(0.1)
        assert controller.decide(
            _signal(float("inf"))
        ).keep_fraction == pytest.approx(0.1)

    def test_shed_validation(self):
        for target in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ConfigurationError):
                ShedController(target_pps=target)
        with pytest.raises(ConfigurationError):
            ShedController(target_pps=1.0, min_keep=1.5)

    def test_degrade_stays_passthrough_until_pressure(self):
        controller = DegradeController(target_pps=1_000.0)
        decision = controller.decide(_signal(500.0))
        assert decision.action == "pass" and decision.batch_chunks == 1
        assert not controller.degraded

    def test_degrade_batches_within_boosted_budget(self):
        controller = DegradeController(
            target_pps=1_000.0, batch_chunks=4, boost=2.0
        )
        decision = controller.decide(_signal(1_500.0))
        assert controller.degraded
        # 1500 <= 1000 * 2.0: batching alone absorbs the overload.
        assert decision.action == "pass"
        assert decision.batch_chunks == 4
        assert decision.degraded

    def test_degrade_thins_above_boosted_budget(self):
        controller = DegradeController(
            target_pps=1_000.0, batch_chunks=4, boost=2.0
        )
        decision = controller.decide(_signal(8_000.0))
        assert decision.action == "thin"
        assert decision.keep_fraction == pytest.approx(2_000.0 / 8_000.0)
        assert decision.degraded

    def test_degrade_restores_after_cooldown(self):
        controller = DegradeController(target_pps=1_000.0, cooldown=2)
        controller.decide(_signal(5_000.0))
        assert controller.degraded
        # One quiet chunk is not enough (hysteresis)...
        first_quiet = controller.decide(_signal(100.0))
        assert first_quiet.degraded and controller.degraded
        # ...the second clears the mode and pass-through resumes.
        second_quiet = controller.decide(_signal(100.0))
        assert not second_quiet.degraded
        assert not controller.degraded
        assert second_quiet.action == "pass"
        assert second_quiet.batch_chunks == 1

    def test_degrade_pressure_resets_the_cooldown(self):
        controller = DegradeController(target_pps=1_000.0, cooldown=2)
        controller.decide(_signal(5_000.0))
        controller.decide(_signal(100.0))
        controller.decide(_signal(5_000.0))  # pressure again
        controller.decide(_signal(100.0))
        assert controller.degraded  # the quiet counter restarted

    def test_degrade_validation(self):
        with pytest.raises(ConfigurationError):
            DegradeController(target_pps=0.0)
        with pytest.raises(ConfigurationError):
            DegradeController(target_pps=1.0, batch_chunks=0)
        with pytest.raises(ConfigurationError):
            DegradeController(target_pps=1.0, boost=0.5)
        with pytest.raises(ConfigurationError):
            DegradeController(target_pps=1.0, cooldown=0)

    def test_factory(self):
        assert build_load_controller(None) is None
        assert build_load_controller("none") is None
        assert isinstance(
            build_load_controller("shed", target_pps=10.0), ShedController
        )
        assert isinstance(
            build_load_controller("degrade", target_pps=10.0),
            DegradeController,
        )
        with pytest.raises(ConfigurationError, match="unknown load policy"):
            build_load_controller("panic", target_pps=10.0)
        with pytest.raises(ConfigurationError, match="target-pps"):
            build_load_controller("shed")
        assert set(LOAD_POLICY_CHOICES) == {"none", "shed", "degrade"}


class TestThinningMechanism:
    def test_mask_is_deterministic(self):
        first = thin_mask(0, 10_000, 0.4, seed=9)
        second = thin_mask(0, 10_000, 0.4, seed=9)
        assert (first == second).all()

    def test_mask_is_geometry_invariant(self):
        whole = thin_mask(0, 10_000, 0.4, seed=9)
        pieces = np.concatenate(
            [
                thin_mask(0, 3_000, 0.4, seed=9),
                thin_mask(3_000, 7_500, 0.4, seed=9),
                thin_mask(7_500, 10_000, 0.4, seed=9),
            ]
        )
        assert (whole == pieces).all()

    def test_mask_fraction_tracks_keep(self):
        mask = thin_mask(0, 100_000, 0.3, seed=1)
        assert mask.mean() == pytest.approx(0.3, abs=0.01)

    def test_mask_varies_with_seed(self):
        assert (
            thin_mask(0, 10_000, 0.5, seed=1)
            != thin_mask(0, 10_000, 0.5, seed=2)
        ).any()

    def test_thin_chunk_rebases_onto_kept_stream(self, trace):
        (chunk,) = TraceChunkSource(trace, chunk_size=trace.num_packets)
        kept = thin_chunk(chunk, 0.5, seed=3, kept_begin=40)
        assert kept.begin == 40
        assert kept.end - kept.begin == kept.num_packets
        assert 0 < kept.num_packets < chunk.num_packets
        assert kept.total_packets == chunk.total_packets
        assert kept.trace.flows is chunk.trace.flows

    def test_thin_chunk_empty_sample_is_none(self, trace):
        source = TraceChunkSource(trace, chunk_size=4)
        chunk = next(iter(source))
        # A vanishing keep fraction on a tiny chunk keeps nothing.
        assert thin_chunk(chunk, 1e-12, seed=1_000, kept_begin=0) is None

    def test_coalesce_round_trips_the_packets(self, trace):
        chunks = list(TraceChunkSource(trace, chunk_size=1_000))
        merged = coalesce_chunks(chunks)
        assert merged.num_packets == trace.num_packets
        assert (merged.trace.flow_ids == trace.flow_ids).all()
        assert (merged.trace.timestamps == trace.timestamps).all()
        assert merged.begin == 0 and merged.end == trace.num_packets

    def test_coalesce_rejects_mixed_flow_tables(self, trace):
        other = build_caida_like_trace(
            CaidaLikeConfig(num_flows=50, duration=1.0, seed=99)
        )
        first = next(iter(TraceChunkSource(trace, chunk_size=500)))
        second = next(iter(TraceChunkSource(other, chunk_size=500)))
        with pytest.raises(ConfigurationError):
            coalesce_chunks([first, second])


class TestChunkGovernor:
    def test_stats_conserve_packets(self, trace):
        governor = ChunkGovernor(ShedController(target_pps=1_000.0, seed=2))
        for chunk in TraceChunkSource(trace, chunk_size=700):
            governor.admit(chunk)
        tail = governor.flush()
        assert tail is None  # shed never batches
        stats = governor.stats
        assert stats.offered_packets == trace.num_packets
        assert stats.kept_packets + stats.dropped_packets == trace.num_packets
        assert 0 < stats.kept_packets < trace.num_packets
        assert stats.chunks == len(
            list(TraceChunkSource(trace, chunk_size=700))
        )

    def test_kept_stream_is_dense(self, trace):
        """Ready chunks tile [first.begin, first.begin + kept) exactly."""
        governor = ChunkGovernor(ShedController(target_pps=1_000.0, seed=2))
        ready = []
        for chunk in TraceChunkSource(trace, chunk_size=700):
            ready.extend(governor.admit(chunk))
        position = ready[0].begin
        assert position == 0
        for chunk in ready:
            assert chunk.begin == position
            assert chunk.end == chunk.begin + chunk.num_packets
            position = chunk.end
        assert position == governor.stats.kept_packets

    def test_batch_flushes_on_epoch_change(self, trace):
        class AlwaysBatch(NoLoadController):
            def decide(self, signal):
                from repro.pipeline import ControlDecision

                return ControlDecision(action="pass", batch_chunks=100)

        governor = ChunkGovernor(AlwaysBatch())
        source = TraceChunkSource(trace, chunk_size=500, epoch_seconds=2.0)
        flushes = []
        for chunk in source:
            flushes.extend(governor.admit(chunk))
        tail = governor.flush()
        if tail is not None:
            flushes.append(tail)
        # Every flushed batch covers a single epoch.
        epochs = [chunk.epoch for chunk in flushes]
        assert len(flushes) >= 2
        assert len(set(epochs)) == len(epochs)
        assert sum(chunk.num_packets for chunk in flushes) == trace.num_packets

    def test_decision_history_is_bounded(self, trace):
        governor = ChunkGovernor(
            ShedController(target_pps=1_000.0, seed=2), history=3
        )
        for chunk in TraceChunkSource(trace, chunk_size=300):
            governor.admit(chunk)
        assert len(governor.decisions) == 3
        assert governor.decisions[-1].kept_packets <= (
            governor.decisions[-1].offered_packets
        )


class TestControlledPipeline:
    def test_none_policy_is_byte_identical_to_no_controller(self, trace):
        plain = InstaMeasure(_config())
        run_pipeline(plain, TraceChunkSource(trace, chunk_size=700))
        controlled = InstaMeasure(_config())
        result = run_pipeline(
            controlled,
            TraceChunkSource(trace, chunk_size=700),
            controller=NoLoadController(),
        )
        assert to_bytes(controlled.snapshot()) == to_bytes(plain.snapshot())
        assert result.offered_packets == trace.num_packets
        assert result.controller_stats["policy"] == "none"
        assert result.controller_stats["keep_rate"] == 1.0
        assert all(r.action == "pass" for r in result.decisions)

    def test_uncontrolled_result_reports_offered_packets(self, trace):
        result = run_pipeline(
            InstaMeasure(_config()),
            TraceChunkSource(trace, chunk_size=700),
        )
        assert result.offered_packets == trace.num_packets
        assert result.controller_stats is None
        assert result.decisions == []

    def test_shed_runs_are_byte_identical(self, trace):
        snapshots = []
        for _ in range(2):
            engine = InstaMeasure(_config())
            result = run_pipeline(
                engine,
                TraceChunkSource(trace, chunk_size=700),
                controller=ShedController(target_pps=1_000.0, seed=17),
            )
            snapshots.append(to_bytes(engine.snapshot()))
        assert snapshots[0] == snapshots[1]
        stats = result.controller_stats
        assert 0 < stats["kept_packets"] < trace.num_packets
        assert result.result.packets == stats["kept_packets"]

    def test_sharded_shed_equals_single_process(self, trace):
        controller = ShedController(target_pps=1_000.0, seed=17)
        single = InstaMeasure(_config())
        run_pipeline(
            single,
            TraceChunkSource(trace, chunk_size=700),
            controller=ShedController(target_pps=1_000.0, seed=17),
        )
        sharded = ShardedPipeline(
            _config(), num_shards=2, parallel=False, controller=controller
        ).run(TraceChunkSource(trace, chunk_size=700))
        assert (
            sharded.estimates_for(trace)[0] == single.estimates_for(trace)[0]
        ).all()
        assert (
            sharded.controller_stats["kept_packets"]
            == sharded.packets
            < trace.num_packets
        )
        assert sharded.offered_packets == trace.num_packets

    def test_batching_only_degrade_is_byte_identical_to_none(self, trace):
        """Chunking invariance: coalesced ingests change nothing but the
        dispatch count."""
        plain = InstaMeasure(_config())
        run_pipeline(plain, TraceChunkSource(trace, chunk_size=500))
        degraded = InstaMeasure(_config())
        # A huge boost means batching alone absorbs any overload — the
        # controller never thins, only coalesces.
        controller = DegradeController(
            target_pps=1.0, batch_chunks=4, boost=1e12
        )
        result = run_pipeline(
            degraded,
            TraceChunkSource(trace, chunk_size=500),
            controller=controller,
        )
        assert to_bytes(degraded.snapshot()) == to_bytes(plain.snapshot())
        stats = result.controller_stats
        assert stats["kept_packets"] == trace.num_packets
        assert stats["batched_ingests"] >= 1
        assert stats["degraded_chunks"] >= 1

    def test_epoch_rotation_survives_shedding(self, trace):
        engine = InstaMeasure(_config())
        result = run_pipeline(
            engine,
            TraceChunkSource(trace, chunk_size=500, epoch_seconds=2.0),
            controller=ShedController(target_pps=1_000.0, seed=17),
            rotate=True,
        )
        assert len(result.epochs) >= 2
        counts = [e.packets_so_far for e in result.epochs]
        assert counts == sorted(counts)
        assert counts[-1] == result.controller_stats["kept_packets"]


class TestDaemonControl:
    @pytest.fixture(scope="class")
    def capture(self, trace, tmp_path_factory):
        from repro.traffic.pcaplite import write_pcaplite

        path = tmp_path_factory.mktemp("control") / "trace.impl"
        write_pcaplite(trace, path)
        return str(path)

    def _source(self, capture):
        from repro.pipeline import PacketRecordChunkSource

        return PacketRecordChunkSource(
            capture, chunk_size=700, epoch_seconds=1.0
        )

    def test_rejects_unknown_policy_up_front(self, capture):
        from repro.service import MeasurementDaemon

        with pytest.raises(ConfigurationError):
            MeasurementDaemon(
                self._source(capture), config=_config(), load_policy="panic"
            )

    def test_shed_daemon_accounts_offered_vs_measured(self, trace, capture):
        from repro.service import MeasurementDaemon

        daemon = MeasurementDaemon(
            self._source(capture),
            config=_config(),
            load_policy="shed",
            target_pps=1_000.0,
        )
        daemon.start()
        assert daemon.wait(60.0)
        assert daemon.error is None
        stats = daemon.stats()
        assert stats["packets"] == trace.num_packets  # offered
        assert 0 < stats["measured_packets"] < trace.num_packets
        assert stats["load_policy"] == "shed"
        assert stats["target_pps"] == 1_000.0
        controller = stats["controller"]
        assert controller["policy"] == "shed"
        assert controller["kept_packets"] == stats["measured_packets"]
        assert daemon.measured_packets == stats["measured_packets"]

    def test_none_daemon_measures_everything(self, trace, capture):
        from repro.service import MeasurementDaemon

        daemon = MeasurementDaemon(self._source(capture), config=_config())
        daemon.start()
        assert daemon.wait(60.0)
        stats = daemon.stats()
        assert stats["measured_packets"] == trace.num_packets
        assert stats["load_policy"] == "none"
        assert stats["controller"] is None


class TestRenderMetrics:
    def test_exposition_format(self):
        from repro.service import render_metrics

        text = render_metrics(
            {
                "packets": 42,
                "pps_recent": 1.5,
                "running": True,
                "error": None,
                "load_policy": "shed",
                "controller": {"kept_packets": 21, "keep_rate": 0.5},
            }
        )
        lines = text.splitlines()
        assert "# TYPE instameasure_packets counter" in lines
        assert "instameasure_packets 42" in lines
        assert "# TYPE instameasure_pps_recent gauge" in lines
        assert "instameasure_pps_recent 1.5" in lines
        assert "instameasure_running 1" in lines
        # Nested controller stats flatten; counters stay counters.
        assert "# TYPE instameasure_controller_kept_packets counter" in lines
        assert "instameasure_controller_kept_packets 21" in lines
        assert "# TYPE instameasure_controller_keep_rate gauge" in lines
        # Non-numeric values are skipped, not mangled.
        assert not any("load_policy" in line for line in lines)
        assert not any("error" in line for line in lines)
        assert text.endswith("\n")

    def test_non_finite_and_unsafe_names(self):
        from repro.service import render_metrics

        text = render_metrics(
            {"pps-total": 3, "bad": float("nan"), "worse": float("inf")}
        )
        assert "instameasure_pps_total 3" in text
        assert "bad" not in text and "worse" not in text

    def test_metrics_verb_over_the_socket(self):
        from repro.service import ControlServer, send_command

        class FakeDaemon:
            def stats(self):
                return {"packets": 7, "controller": {"keep_rate": 1.0}}

        with ControlServer(FakeDaemon()) as server:
            ok, payload = send_command(server.address, "metrics")
        assert ok
        assert isinstance(payload, str)
        assert "# TYPE instameasure_packets counter" in payload
        assert "instameasure_controller_keep_rate 1.0" in payload
