"""Failure-injection tests: the system under hostile or degenerate inputs.

Production measurement systems see pathological traffic.  These tests
verify the pipeline stays consistent (no crashes, counters conserved,
errors bounded or at least sane) under adversarial placement collisions,
extreme WSAF pressure, heavy mirror-port loss, and degenerate traces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InstaMeasure, InstaMeasureConfig, RCCSketch, WSAFTable
from repro.simulate import MirrorPort
from repro.traffic import CaidaLikeConfig, FiveTuple, FlowTable, build_caida_like_trace
from repro.traffic.packet import Trace


def _colliding_keys(sketch: RCCSketch, count: int, start: int = 1) -> "list[int]":
    """Find ``count`` keys whose virtual vectors land in the same word."""
    target_idx, _offset = sketch.place(start)
    keys = [start]
    candidate = start + 1
    while len(keys) < count:
        idx, _off = sketch.place(candidate)
        if idx == target_idx:
            keys.append(candidate)
        candidate += 1
    return keys


class TestAdversarialCollisions:
    def test_colliding_flows_still_counted(self):
        """Many flows forced into one sketch word: noisy but functional."""
        sketch = RCCSketch(1024, vector_bits=8, seed=42)
        keys = _colliding_keys(sketch, 8)
        rng = np.random.default_rng(0)
        per_flow = 2000
        estimates = {key: 0.0 for key in keys}
        for _ in range(per_flow):
            for key in keys:
                noise = sketch.encode(key, int(rng.integers(8)))
                if noise is not None:
                    estimates[key] += sketch.decode(noise)
        for key in keys:
            estimates[key] += sketch.partial_estimate(key)
            # Heavily shared words distort individual counts, but each flow
            # still lands within a sane multiple of the truth.
            assert 0.2 * per_flow < estimates[key] < 5.0 * per_flow
        total = sum(estimates.values())
        assert total == pytest.approx(per_flow * len(keys), rel=0.5)

    def test_recycling_is_bounded_interference(self):
        """A hot flow recycling its window cannot erase a neighbour fully."""
        sketch = RCCSketch(64, vector_bits=8, word_bits=32, seed=7)
        hot, cold = _colliding_keys(sketch, 2)
        rng = np.random.default_rng(1)
        cold_estimate = 0.0
        cold_packets = 0
        for round_index in range(30_000):
            noise = sketch.encode(hot, int(rng.integers(8)))
            if round_index % 10 == 0:
                cold_packets += 1
                noise_cold = sketch.encode(cold, int(rng.integers(8)))
                if noise_cold is not None:
                    cold_estimate += sketch.decode(noise_cold)
        cold_estimate += sketch.partial_estimate(cold)
        assert cold_estimate > 0.05 * cold_packets


class TestWSAFPressure:
    def test_probe_limit_one_still_works(self):
        table = WSAFTable(num_entries=16, probe_limit=1)
        for key in range(100):
            table.accumulate(key, 1.0, 0.0, float(key))
        assert len(table) <= 16
        assert table.insertions + table.rejected + table.updates == 100

    def test_eviction_churn_conserves_bookkeeping(self):
        table = WSAFTable(num_entries=8, probe_limit=8)
        rng = np.random.default_rng(2)
        for step in range(5000):
            table.accumulate(int(rng.integers(1, 500)), 1.0, 10.0, float(step))
        assert len(table) == sum(table._occupied)
        assert 0 <= len(table) <= 8
        assert table.insertions - table.evictions - table.gc_reclaimed == len(table)

    def test_tiny_wsaf_under_real_traffic(self):
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=3000, duration=8.0, seed=44)
        )
        engine = InstaMeasure(
            InstaMeasureConfig(l1_memory_bytes=2048, wsaf_entries=16, probe_limit=8)
        )
        result = engine.process_trace(trace)
        assert result.packets == trace.num_packets
        assert len(engine.wsaf) <= 16
        # The biggest elephant should still be present and roughly counted.
        truth = trace.ground_truth_packets()
        top = int(np.argmax(truth))
        entry = engine.wsaf.lookup(int(trace.flows.key64[top]))
        assert entry is not None


class TestMirrorPortLoss:
    def test_heavy_loss_consistency(self):
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=3000, duration=3.0, seed=45)
        )
        port = MirrorPort(capacity_bps=2e6, buffer_bytes=20_000)
        delivered, stats = port.apply(trace)
        assert stats.drop_rate > 0.5  # genuinely heavy loss
        engine = InstaMeasure(
            InstaMeasureConfig(l1_memory_bytes=4096, wsaf_entries=1 << 12)
        )
        result = engine.process_trace(delivered)
        assert result.packets == delivered.num_packets
        # Estimates compare against post-drop truth, as in the paper.
        truth = delivered.ground_truth_packets().astype(float)
        big = truth >= 1000
        if big.any():
            est, _ = engine.estimates_for(delivered)
            rel = np.abs(est[big] - truth[big]) / truth[big]
            assert rel.mean() < 0.2


class TestDegenerateTraces:
    def test_burst_of_identical_timestamps(self):
        flows = FlowTable.from_five_tuples([FiveTuple(1, 2, 3, 4, 6)])
        trace = Trace(
            timestamps=np.zeros(500),
            flow_ids=np.zeros(500, dtype=np.int64),
            sizes=np.full(500, 100, dtype=np.int64),
            flows=flows,
        )
        engine = InstaMeasure(
            InstaMeasureConfig(l1_memory_bytes=1024, wsaf_entries=64)
        )
        result = engine.process_trace(trace)
        assert result.packets == 500
        est, _ = engine.estimates_for(trace, include_residual=True)
        assert est[0] == pytest.approx(500, rel=0.25)

    def test_all_single_packet_flows(self):
        rng = np.random.default_rng(3)
        tuples = [
            FiveTuple(int(rng.integers(1 << 32)), 1, 1, 1, 17) for _ in range(2000)
        ]
        flows = FlowTable.from_five_tuples(tuples)
        trace = Trace(
            timestamps=np.sort(rng.random(2000)),
            flow_ids=np.arange(2000, dtype=np.int64),
            sizes=np.full(2000, 60, dtype=np.int64),
            flows=flows,
        )
        engine = InstaMeasure(
            InstaMeasureConfig(l1_memory_bytes=1024, wsaf_entries=1 << 10)
        )
        result = engine.process_trace(trace)
        # Pure mice: almost nothing should reach the WSAF.
        assert result.regulation_rate < 0.01

    def test_empty_trace_through_full_pipeline(self):
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=10, duration=1.0, seed=46)
        ).time_slice(100.0, 200.0)
        engine = InstaMeasure(
            InstaMeasureConfig(l1_memory_bytes=1024, wsaf_entries=64)
        )
        result = engine.process_trace(trace)
        assert result.packets == 0
        assert result.regulation_rate == 0.0
        assert len(engine.wsaf) == 0
