"""Tests for error metrics and table rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    band_errors,
    format_table,
    mean_relative_error,
    relative_errors,
    rms_relative_error,
    standard_error,
)
from repro.analysis.metrics import (
    PAPER_BYTE_BANDS,
    PAPER_PACKET_BANDS,
    scaled_bands,
)
from repro.errors import ConfigurationError


class TestRelativeErrors:
    def test_exact_estimates_have_zero_error(self):
        truth = np.array([10.0, 20.0, 30.0])
        assert mean_relative_error(truth, truth) == 0.0
        assert rms_relative_error(truth, truth) == 0.0
        assert standard_error(truth, truth) == 0.0

    def test_known_errors(self):
        truth = np.array([100.0, 100.0])
        estimated = np.array([110.0, 90.0])
        errors = relative_errors(estimated, truth)
        assert errors.tolist() == [pytest.approx(0.1), pytest.approx(0.1)]
        assert mean_relative_error(estimated, truth) == pytest.approx(0.1)
        assert standard_error(estimated, truth) == pytest.approx(0.1)

    def test_rms_penalizes_outliers_more(self):
        truth = np.full(10, 100.0)
        estimated = truth.copy()
        estimated[0] = 200.0
        assert rms_relative_error(estimated, truth) > mean_relative_error(
            estimated, truth
        )

    def test_misaligned_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_errors(np.array([1.0]), np.array([1.0, 2.0]))

    def test_nonpositive_truth_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_errors(np.array([1.0]), np.array([0.0]))


class TestBandErrors:
    def test_bands_partition_flows(self):
        truth = np.array([5.0, 50.0, 500.0, 5000.0])
        estimated = truth * 1.1
        bands = band_errors(estimated, truth, [(1, 100), (100, np.inf)])
        assert bands[0].num_flows == 2
        assert bands[1].num_flows == 2
        assert bands[0].mean_error == pytest.approx(0.1)

    def test_empty_band_reports_nan(self):
        truth = np.array([5.0])
        bands = band_errors(truth, truth, [(100, 200)])
        assert bands[0].num_flows == 0
        assert np.isnan(bands[0].mean_error)

    def test_band_labels(self):
        truth = np.array([50.0])
        bands = band_errors(truth, truth, [(10, 100), (100, np.inf)])
        assert bands[0].label() == "[10, 100) pkts"
        assert bands[1].label("bytes") == ">=100 bytes"

    def test_invalid_band_rejected(self):
        truth = np.array([5.0])
        with pytest.raises(ConfigurationError):
            band_errors(truth, truth, [(10, 10)])

    def test_paper_bands_scale(self):
        scaled = scaled_bands(PAPER_PACKET_BANDS, 0.01)
        assert scaled[0] == (100.0, 1000.0)
        assert scaled[-1][1] == np.inf
        assert len(PAPER_BYTE_BANDS) == 3

    def test_scale_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            scaled_bands(PAPER_PACKET_BANDS, 0.0)


class TestFormatTable:
    def test_renders_aligned_columns(self):
        text = format_table(
            ["name", "value"], [["alpha", 1], ["b", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2] and "value" in lines[2]
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all rows padded to equal width

    def test_empty_rows_ok(self):
        text = format_table(["only"], [])
        assert "only" in text

    def test_header_required(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["x"]])
