"""Tests for EWMA-based traffic change detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection import (
    EwmaChangeDetector,
    detect_volume_changes,
)
from repro.errors import ConfigurationError
from repro.traffic import AttackConfig, CaidaLikeConfig, build_caida_like_trace
from repro.traffic.attack import inject_attack_flows


class TestEwmaDetector:
    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            EwmaChangeDetector(alpha=0.0)
        with pytest.raises(ConfigurationError):
            EwmaChangeDetector(alpha=1.0)
        with pytest.raises(ConfigurationError):
            EwmaChangeDetector(threshold_sigmas=0.0)
        with pytest.raises(ConfigurationError):
            EwmaChangeDetector(warmup_buckets=0)

    def test_steady_stream_no_events(self):
        rng = np.random.default_rng(0)
        detector = EwmaChangeDetector(threshold_sigmas=5.0)
        for t in range(200):
            detector.observe(float(t), 1000.0 + rng.normal(0, 30))
        assert detector.events == []

    def test_spike_detected(self):
        rng = np.random.default_rng(1)
        detector = EwmaChangeDetector(threshold_sigmas=4.0)
        for t in range(50):
            detector.observe(float(t), 1000.0 + rng.normal(0, 30))
        event = detector.observe(50.0, 5000.0)
        assert event is not None
        assert event.is_spike and not event.is_collapse
        assert event.sigmas > 4.0

    def test_collapse_detected(self):
        rng = np.random.default_rng(2)
        detector = EwmaChangeDetector(threshold_sigmas=4.0)
        for t in range(50):
            detector.observe(float(t), 1000.0 + rng.normal(0, 30))
        event = detector.observe(50.0, 10.0)  # link failure
        assert event is not None
        assert event.is_collapse

    def test_anomalies_do_not_poison_forecast(self):
        rng = np.random.default_rng(3)
        detector = EwmaChangeDetector(threshold_sigmas=4.0)
        for t in range(50):
            detector.observe(float(t), 1000.0 + rng.normal(0, 30))
        # A sustained attack keeps firing (the forecast is not dragged up).
        events = [detector.observe(50.0 + t, 5000.0) for t in range(10)]
        assert all(event is not None for event in events)

    def test_warmup_suppresses_early_events(self):
        detector = EwmaChangeDetector(threshold_sigmas=1.0, warmup_buckets=10)
        for t in range(5):
            assert detector.observe(float(t), 100.0 * (t + 1)) is None

    def test_reset(self):
        detector = EwmaChangeDetector()
        detector.observe(0.0, 100.0)
        detector.reset()
        assert detector.events == [] and detector._mean is None


class TestTraceChangeDetection:
    def test_attack_flagged_in_trace(self):
        background = build_caida_like_trace(
            CaidaLikeConfig(num_flows=4000, duration=30.0, seed=121)
        )
        attacked, _ = inject_attack_flows(
            background,
            AttackConfig(rates_pps=[200_000.0], duration=2.0, start_time=20.0),
        )
        events = detect_volume_changes(attacked, bucket_seconds=1.0)
        assert events  # the attack bucket fires
        spike_times = [event.time for event in events if event.is_spike]
        assert any(19.0 <= t <= 23.0 for t in spike_times)

    def test_byte_metric(self):
        background = build_caida_like_trace(
            CaidaLikeConfig(num_flows=4000, duration=30.0, seed=122)
        )
        attacked, _ = inject_attack_flows(
            background,
            AttackConfig(
                rates_pps=[150_000.0], duration=2.0, start_time=15.0,
                packet_size=1400,
            ),
        )
        events = detect_volume_changes(attacked, bucket_seconds=1.0, metric="bytes")
        assert any(event.is_spike for event in events)

    def test_unknown_metric_rejected(self):
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=100, duration=2.0, seed=123)
        )
        with pytest.raises(ConfigurationError):
            detect_volume_changes(trace, 1.0, metric="flows")
