"""Tests for the baseline algorithms (RCC-only, CSM, NetFlow, CMS, Space-Saving)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    CSMSketch,
    CountMinSketch,
    NetFlowTable,
    SpaceSaving,
    run_rcc_regulator,
)
from repro.errors import ConfigurationError
from repro.traffic import CaidaLikeConfig, build_caida_like_trace


@pytest.fixture(scope="module")
def trace():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=4000, duration=15.0, seed=71)
    )


class TestRCCOnly:
    def test_regulation_rate_in_paper_band(self, trace):
        """Fig 1: RCC saturates at roughly 10-20 % of packet arrivals."""
        result = run_rcc_regulator(trace, memory_bytes=4096, vector_bits=8)
        assert 0.05 <= result.regulation_rate <= 0.25

    def test_bigger_vector_regulates_less(self, trace):
        small = run_rcc_regulator(trace, memory_bytes=4096, vector_bits=8)
        large = run_rcc_regulator(trace, memory_bytes=4096, vector_bits=16)
        assert large.regulation_rate < small.regulation_rate

    def test_bucket_series_consistent(self, trace):
        result = run_rcc_regulator(trace, 4096, bucket_seconds=1.0)
        assert result.bucket_pps.sum() == pytest.approx(result.packets)
        assert result.bucket_ips.sum() == pytest.approx(result.saturations)
        assert len(result.bucket_times) == len(result.bucket_pps)

    def test_estimates_track_large_flows(self, trace):
        result = run_rcc_regulator(trace, 8192)
        truth = trace.ground_truth_packets()
        big = int(np.argmax(truth))
        key = int(trace.flows.key64[big])
        assert result.estimates[key] == pytest.approx(truth[big], rel=0.25)

    def test_empty_trace(self, trace):
        empty = trace.time_slice(1e9, 2e9)
        result = run_rcc_regulator(empty, 4096)
        assert result.packets == 0 and result.regulation_rate == 0.0


class TestCSM:
    def test_rejects_tiny_pool(self):
        with pytest.raises(ConfigurationError):
            CSMSketch(memory_bytes=16, counters_per_flow=16)

    def test_scalar_and_vector_placement_agree(self):
        sketch = CSMSketch(memory_bytes=4096, counters_per_flow=8, seed=3)
        keys = np.array([1, 99, 2**60], dtype=np.uint64)
        locations = sketch._flow_counters_array(keys)
        for i, key in enumerate(keys):
            assert locations[i].tolist() == sketch.flow_counters(int(key))

    def test_encode_decode_single_flow(self):
        sketch = CSMSketch(memory_bytes=64 * 1024, counters_per_flow=8, seed=4)
        rng = np.random.default_rng(0)
        for _ in range(5000):
            sketch.encode(42, int(rng.integers(8)))
        assert sketch.decode(42) == pytest.approx(5000, rel=0.05)

    def test_trace_accuracy_on_elephants(self, trace):
        sketch = CSMSketch(memory_bytes=512 * 1024, counters_per_flow=16, seed=5)
        sketch.encode_trace(trace)
        truth = trace.ground_truth_packets()
        big = truth >= 1000
        estimates = sketch.decode_flows(trace.flows.key64[big])
        rel = np.abs(estimates - truth[big]) / truth[big]
        assert rel.mean() < 0.25

    def test_decode_flows_matches_scalar(self, trace):
        sketch = CSMSketch(memory_bytes=64 * 1024, seed=6)
        sketch.encode_trace(trace)
        keys = trace.flows.key64[:20]
        vector = sketch.decode_flows(keys)
        for i, key in enumerate(keys):
            assert vector[i] == pytest.approx(sketch.decode(int(key)))

    def test_noise_grows_with_load(self, trace):
        """CSM at small memory has large noise — the Section V-C comparison."""
        small = CSMSketch(memory_bytes=16 * 1024, counters_per_flow=16, seed=7)
        big = CSMSketch(memory_bytes=1024 * 1024, counters_per_flow=16, seed=7)
        small.encode_trace(trace)
        big.encode_trace(trace)
        truth = trace.ground_truth_packets()
        top = truth >= 500
        err_small = np.abs(small.decode_flows(trace.flows.key64[top]) - truth[top]) / truth[top]
        err_big = np.abs(big.decode_flows(trace.flows.key64[top]) - truth[top]) / truth[top]
        assert err_big.mean() < err_small.mean()


class TestNetFlow:
    def test_exact_when_unconstrained(self, trace):
        table = NetFlowTable(max_entries=10**6)
        stats = table.process_trace(trace)
        assert stats.operations_per_packet == 1.0  # the {ips = pps} regime
        estimates = table.estimates()
        truth = trace.ground_truth_packets()
        for flow in range(0, trace.num_flows, 500):
            key = int(trace.flows.key64[flow])
            assert estimates[key][0] == truth[flow]

    def test_sampling_reduces_operations(self, trace):
        table = NetFlowTable(max_entries=10**6, sampling_rate=0.1, seed=1)
        stats = table.process_trace(trace)
        assert stats.operations_per_packet == pytest.approx(0.1, abs=0.02)

    def test_sampling_estimates_scaled(self, trace):
        table = NetFlowTable(max_entries=10**6, sampling_rate=0.25, seed=2)
        table.process_trace(trace)
        truth = trace.ground_truth_packets()
        big = int(np.argmax(truth))
        key = int(trace.flows.key64[big])
        assert table.estimates()[key][0] == pytest.approx(truth[big], rel=0.2)

    def test_capacity_eviction(self, trace):
        table = NetFlowTable(max_entries=64)
        stats = table.process_trace(trace)
        assert len(table) <= 64
        assert stats.evictions > 0

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            NetFlowTable(max_entries=0)
        with pytest.raises(ConfigurationError):
            NetFlowTable(max_entries=10, sampling_rate=0.0)
        with pytest.raises(ConfigurationError):
            NetFlowTable(max_entries=10, active_timeout=0.0)

    def test_rotate_flushes_timed_out_entries(self, trace):
        table = NetFlowTable(max_entries=10**6, active_timeout=1.0)
        table.process_trace(trace)
        before = len(table)
        # The snapshot is taken before the flush: it sees the full table.
        snapshot = table.rotate(float(trace.timestamps[-1]) + 10.0)
        assert len(snapshot) == before
        assert len(table) == 0  # everything idled past the timeout
        assert table.stats.timeout_flushes == before

    def test_rotate_keeps_recent_entries(self, trace):
        table = NetFlowTable(max_entries=10**6, active_timeout=10**9)
        table.process_trace(trace)
        before = len(table)
        table.rotate(float(trace.timestamps[-1]))
        assert len(table) == before
        assert table.stats.timeout_flushes == 0

    def test_rotate_without_timeout_is_a_snapshot(self, trace):
        table = NetFlowTable(max_entries=10**6)
        table.process_trace(trace)
        snapshot = table.rotate(float(trace.timestamps[-1]) + 10**6)
        assert snapshot == table.estimates()
        assert len(table) == len(snapshot)


class TestCountMin:
    def test_never_underestimates(self, trace):
        sketch = CountMinSketch(memory_bytes=64 * 1024, depth=4, seed=8)
        sketch.encode_trace(trace)
        truth = trace.ground_truth_packets()
        estimates = sketch.query_flows(trace.flows.key64)
        assert np.all(estimates >= truth)

    def test_scalar_vector_query_agree(self, trace):
        sketch = CountMinSketch(memory_bytes=64 * 1024, seed=9)
        sketch.encode_trace(trace)
        keys = trace.flows.key64[:10]
        vector = sketch.query_flows(keys)
        for i, key in enumerate(keys):
            assert int(vector[i]) == sketch.query(int(key))

    def test_conservative_tighter_than_plain(self, trace):
        small = trace.time_slice(
            float(trace.timestamps[0]), float(trace.timestamps[0]) + 2.0
        )
        plain = CountMinSketch(memory_bytes=8 * 1024, seed=10)
        conservative = CountMinSketch(memory_bytes=8 * 1024, seed=10, conservative=True)
        plain.encode_trace(small)
        conservative.encode_trace(small)
        keys = small.flows.key64
        assert conservative.query_flows(keys).sum() <= plain.query_flows(keys).sum()

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(memory_bytes=4, depth=4)
        with pytest.raises(ConfigurationError):
            CountMinSketch(memory_bytes=1024, depth=0)


class TestSpaceSaving:
    def test_exact_when_under_capacity(self):
        summary = SpaceSaving(capacity=10)
        stream = [1, 1, 2, 3, 1, 2]
        for key in stream:
            summary.offer(key)
        assert summary.estimate(1) == 3
        assert summary.estimate(2) == 2
        assert summary.guaranteed(3) == 1

    def test_never_underestimates(self):
        rng = np.random.default_rng(11)
        stream = rng.zipf(1.5, size=20000) % 500
        summary = SpaceSaving(capacity=50)
        truth: "dict[int, int]" = {}
        for key in stream.tolist():
            summary.offer(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            if summary.estimate(key):
                assert summary.estimate(key) >= count

    def test_topk_finds_heavy_flows(self, trace):
        summary = SpaceSaving(capacity=256)
        summary.process_trace(trace)
        truth = trace.ground_truth_packets()
        top_true = set(np.argsort(-truth)[:10].tolist())
        top_keys = {key for key, _count in summary.topk(30)}
        hits = sum(
            1 for flow in top_true if int(trace.flows.key64[flow]) in top_keys
        )
        assert hits >= 8

    def test_capacity_respected(self):
        summary = SpaceSaving(capacity=5)
        for key in range(100):
            summary.offer(key)
        assert len(summary) == 5

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            SpaceSaving(capacity=0)
        with pytest.raises(ConfigurationError):
            SpaceSaving(capacity=5).topk(0)
