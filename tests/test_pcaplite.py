"""Tests for the pcap-lite streaming trace format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traffic import (
    CaidaLikeConfig,
    FiveTuple,
    PacketRecordReader,
    PacketRecordWriter,
    build_caida_like_trace,
    read_pcaplite,
    write_pcaplite,
)
from repro.traffic.pcaplite import RECORD_BYTES


@pytest.fixture(scope="module")
def trace():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=800, duration=5.0, seed=131)
    )


class TestRoundTrip:
    def test_ground_truth_preserved(self, trace, tmp_path):
        path = tmp_path / "trace.impl"
        written = write_pcaplite(trace, path)
        assert written == trace.num_packets
        loaded = read_pcaplite(path, hash_seed=trace.flows.hash_seed)
        assert loaded.num_packets == trace.num_packets
        assert loaded.num_flows == trace.num_flows
        assert np.allclose(loaded.timestamps, trace.timestamps)
        # Ground truth is identical up to flow reindexing.
        assert sorted(loaded.ground_truth_packets()) == sorted(
            trace.ground_truth_packets()
        )
        assert loaded.total_bytes == trace.total_bytes

    def test_file_size_is_exact(self, trace, tmp_path):
        path = tmp_path / "sized.impl"
        write_pcaplite(trace, path)
        assert path.stat().st_size == 16 + RECORD_BYTES * trace.num_packets

    def test_streaming_reader_yields_records(self, tmp_path):
        path = tmp_path / "stream.impl"
        five_tuple = FiveTuple(1, 2, 3, 4, 6)
        with PacketRecordWriter(path) as writer:
            for p in range(10):
                writer.write(float(p), five_tuple, 100 + p)
        with PacketRecordReader(path) as reader:
            records = list(reader)
        assert len(records) == 10
        assert records[3] == (3.0, five_tuple, 103)

    def test_empty_file_roundtrip(self, tmp_path):
        path = tmp_path / "empty.impl"
        with PacketRecordWriter(path):
            pass
        loaded = read_pcaplite(path)
        assert loaded.num_packets == 0


class TestFormatErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError):
            PacketRecordReader(tmp_path / "absent.impl")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.impl"
        path.write_bytes(b"NOPE" + b"\x00" * 12)
        with pytest.raises(TraceFormatError):
            PacketRecordReader(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.impl"
        path.write_bytes(b"IM")
        with pytest.raises(TraceFormatError):
            PacketRecordReader(path)

    def test_truncated_record(self, tmp_path):
        path = tmp_path / "cut.impl"
        with PacketRecordWriter(path) as writer:
            writer.write(0.0, FiveTuple(1, 2, 3, 4, 6), 100)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with PacketRecordReader(path) as reader:
            with pytest.raises(TraceFormatError):
                list(reader)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "versioned.impl"
        with PacketRecordWriter(path):
            pass
        data = bytearray(path.read_bytes())
        data[4] = 99  # version field
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError):
            PacketRecordReader(path)
