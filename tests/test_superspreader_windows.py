"""Tests for superspreader detection and windowed measurement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InstaMeasure, InstaMeasureConfig, WSAFTable
from repro.detection import (
    detect_superspreaders,
    fanout_by_source,
    ground_truth_fanout,
    windowed_topk_recall,
)
from repro.errors import ConfigurationError
from repro.traffic import (
    CaidaLikeConfig,
    FiveTuple,
    FlowTable,
    build_caida_like_trace,
)
from repro.traffic.packet import Trace


def _scanner_trace(num_targets=50, packets_per_flow=120, seed=0):
    """One source scanning many destinations, with enough packets per flow
    to leak through the regulator, plus some background flows."""
    rng = np.random.default_rng(seed)
    tuples = [
        FiveTuple(0x0A0A0A0A, 0xC0000000 + t, 1000 + t, 80, 6)
        for t in range(num_targets)
    ]
    tuples += [
        FiveTuple(int(rng.integers(1 << 32)), int(rng.integers(1 << 32)),
                  int(rng.integers(1024, 1 << 16)), 443, 6)
        for _ in range(100)
    ]
    flows = FlowTable.from_five_tuples(tuples)
    sizes = [packets_per_flow] * num_targets + [3] * 100
    flow_ids = np.repeat(np.arange(len(tuples)), sizes)
    timestamps = np.sort(rng.random(len(flow_ids)) * 10.0)
    return Trace(
        timestamps=timestamps,
        flow_ids=flow_ids,
        sizes=np.full(len(flow_ids), 300, dtype=np.int64),
        flows=flows,
    )


class TestSuperspreader:
    def test_ground_truth_fanout(self):
        trace = _scanner_trace(num_targets=40)
        fanout = ground_truth_fanout(trace)
        assert fanout[0x0A0A0A0A] == 40

    def test_scanner_visible_in_wsaf(self):
        trace = _scanner_trace(num_targets=50, packets_per_flow=150)
        engine = InstaMeasure(
            InstaMeasureConfig(l1_memory_bytes=4096, wsaf_entries=1 << 12)
        )
        engine.process_trace(trace)
        fanout = fanout_by_source(engine.wsaf)
        # Flows of 150 packets exceed the ~95-packet retention quantum, so
        # most of the scan's flows surface in the WSAF.
        assert fanout.get(0x0A0A0A0A, 0) >= 25

    def test_detect_threshold(self):
        trace = _scanner_trace(num_targets=50, packets_per_flow=150)
        engine = InstaMeasure(
            InstaMeasureConfig(l1_memory_bytes=4096, wsaf_entries=1 << 12)
        )
        engine.process_trace(trace)
        spreaders = detect_superspreaders(engine.wsaf, min_destinations=20)
        assert set(spreaders) == {0x0A0A0A0A}

    def test_background_sources_not_flagged(self):
        trace = _scanner_trace()
        engine = InstaMeasure(
            InstaMeasureConfig(l1_memory_bytes=4096, wsaf_entries=1 << 12)
        )
        engine.process_trace(trace)
        spreaders = detect_superspreaders(engine.wsaf, min_destinations=5)
        assert all(src == 0x0A0A0A0A for src in spreaders)

    def test_entries_without_tuples_skipped(self):
        table = WSAFTable(num_entries=16)
        table.accumulate(1, 10.0, 0.0, 0.0)  # no 5-tuple stored
        assert fanout_by_source(table) == {}

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            detect_superspreaders(WSAFTable(num_entries=16), min_destinations=0)


class TestWindowedMeasurement:
    @pytest.fixture(scope="class")
    def trace(self):
        return build_caida_like_trace(
            CaidaLikeConfig(num_flows=4000, duration=20.0, seed=81)
        )

    def test_snapshot_count_and_monotone_packets(self, trace):
        snapshots = windowed_topk_recall(
            trace,
            window_seconds=5.0,
            ks=[10],
            config=InstaMeasureConfig(l1_memory_bytes=4096, wsaf_entries=1 << 14),
        )
        assert 4 <= len(snapshots) <= 5
        counts = [snap.packets_so_far for snap in snapshots]
        assert counts == sorted(counts)
        assert counts[-1] == trace.num_packets

    def test_recall_reasonable_at_every_boundary(self, trace):
        snapshots = windowed_topk_recall(
            trace,
            window_seconds=5.0,
            ks=[10, 50],
            config=InstaMeasureConfig(l1_memory_bytes=8192, wsaf_entries=1 << 14),
        )
        for snap in snapshots:
            assert snap.recalls[10] >= 0.6
            assert 0.0 <= snap.recalls[50] <= 1.0

    def test_wsaf_population_grows(self, trace):
        snapshots = windowed_topk_recall(
            trace,
            window_seconds=5.0,
            ks=[10],
            config=InstaMeasureConfig(l1_memory_bytes=4096, wsaf_entries=1 << 14),
        )
        assert snapshots[-1].wsaf_flows >= snapshots[0].wsaf_flows

    def test_empty_trace(self, trace):
        empty = trace.time_slice(1e9, 2e9)
        assert windowed_topk_recall(empty, 5.0, [10]) == []

    def test_invalid_inputs(self, trace):
        with pytest.raises(ConfigurationError):
            windowed_topk_recall(trace, 0.0, [10])
        with pytest.raises(ConfigurationError):
            windowed_topk_recall(trace, 5.0, [])
        from repro.baselines import NetFlowTable

        with pytest.raises(ConfigurationError):
            windowed_topk_recall(
                trace,
                5.0,
                [10],
                config=InstaMeasureConfig(),
                measurer=NetFlowTable(max_entries=100),
            )

    def test_netflow_baseline_series(self, trace):
        """An exact cache scores perfect recall at every boundary."""
        from repro.baselines import NetFlowTable

        snapshots = windowed_topk_recall(
            trace,
            window_seconds=5.0,
            ks=[10],
            measurer=NetFlowTable(max_entries=10**6),
        )
        assert len(snapshots) >= 4
        for snap in snapshots:
            assert snap.recalls[10] == 1.0

    def test_delegation_series_with_rotation(self, trace):
        """Epoch-aligned rotation makes delegation windowable: each
        boundary scores what the collector has actually received."""
        from repro.baselines import DelegatingMeasurer

        snapshots = windowed_topk_recall(
            trace,
            window_seconds=5.0,
            ks=[10],
            measurer=DelegatingMeasurer(
                sketch_memory_bytes=256 * 1024,
                epoch_seconds=5.0,
                network_delay_seconds=0.0,
            ),
            rotate=True,
        )
        assert len(snapshots) >= 4
        # Every completed window has been shipped by rotation, so the
        # collector's view tracks the top flows.
        for snap in snapshots[1:]:
            assert snap.recalls[10] >= 0.6

    def test_rotating_netflow_flush_costs_recall(self, trace):
        from repro.baselines import NetFlowTable

        cache = NetFlowTable(max_entries=10**6, active_timeout=1.0)
        snapshots = windowed_topk_recall(
            trace,
            window_seconds=5.0,
            ks=[10],
            measurer=cache,
            rotate=True,
        )
        # The flush really fires; the first window (nothing flushed yet)
        # is still perfect, but counts flushed in earlier windows are
        # gone for good — the exact failure mode the paper's in-DRAM
        # retention avoids, visible as recall at or below the
        # non-flushing cache's 1.0 at every later boundary.
        assert cache.stats.timeout_flushes > 0
        assert snapshots[0].recalls[10] == 1.0
        assert all(snap.recalls[10] <= 1.0 for snap in snapshots)
        assert min(snap.recalls[10] for snap in snapshots) < 1.0
