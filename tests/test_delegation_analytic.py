"""Tests for the delegation-based measurer and the analytic single-flow model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DelegatingMeasurer
from repro.core import (
    FlowRegulator,
    SingleFlowRegulatorModel,
    coupon_partial_sum,
    saturation_time_pmf,
    saturation_time_variance,
)
from repro.detection import ground_truth_detection_times
from repro.errors import ConfigurationError
from repro.traffic import AttackConfig, CaidaLikeConfig, build_caida_like_trace
from repro.traffic.attack import inject_attack_flows


class TestDelegatingMeasurer:
    @pytest.fixture(scope="class")
    def trace(self):
        return build_caida_like_trace(
            CaidaLikeConfig(num_flows=1500, duration=6.0, seed=93)
        )

    def test_estimates_track_truth(self, trace):
        measurer = DelegatingMeasurer(
            sketch_memory_bytes=256 * 1024,
            epoch_seconds=1.0,
            network_delay_seconds=0.02,
        )
        estimates, stats = measurer.process_trace(trace)
        truth = trace.ground_truth_packets().astype(float)
        big = truth >= 500
        rel = np.abs(estimates[big] - truth[big]) / truth[big]
        assert rel.mean() < 0.25
        assert stats.epochs >= 5

    def test_bandwidth_cost_positive_and_linear_in_epochs(self, trace):
        slow = DelegatingMeasurer(64 * 1024, epoch_seconds=3.0,
                                  network_delay_seconds=0.02)
        fast = DelegatingMeasurer(64 * 1024, epoch_seconds=0.5,
                                  network_delay_seconds=0.02)
        _e1, stats_slow = slow.process_trace(trace)
        _e2, stats_fast = fast.process_trace(trace)
        # Shipping more often costs more collector bandwidth.
        assert stats_fast.bytes_shipped > stats_slow.bytes_shipped
        assert stats_fast.shipping_overhead_bps(trace.duration) > 0

    def test_detection_waits_for_epoch_boundary(self, trace):
        attacked, injected = inject_attack_flows(
            trace,
            AttackConfig(rates_pps=[30_000.0], duration=1.0, start_time=1.2),
        )
        measurer = DelegatingMeasurer(
            256 * 1024, epoch_seconds=0.5, network_delay_seconds=0.05
        )
        _estimates, stats = measurer.process_trace(attacked, threshold_packets=500)
        truth_times, _ = ground_truth_detection_times(
            attacked, threshold_packets=500
        )
        flow = injected[0]
        assert flow in stats.detections
        # The collector can only know after the epoch ends plus the delay.
        assert stats.detections[flow] >= truth_times[flow] + 0.05

    def test_empty_trace(self, trace):
        empty = trace.time_slice(1e9, 2e9)
        measurer = DelegatingMeasurer(64 * 1024, 1.0, 0.0)
        estimates, stats = measurer.process_trace(empty)
        assert stats.epochs == 0 and stats.bytes_shipped == 0

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            DelegatingMeasurer(1024, epoch_seconds=0.0, network_delay_seconds=0.0)
        with pytest.raises(ConfigurationError):
            DelegatingMeasurer(1024, epoch_seconds=1.0, network_delay_seconds=-1.0)

    def test_rotate_ships_completed_epochs(self, trace):
        measurer = DelegatingMeasurer(
            256 * 1024, epoch_seconds=1.0, network_delay_seconds=0.0
        )
        first_epoch = trace.time_slice(0.0, 1.0)
        measurer.ingest(first_epoch)
        start = float(first_epoch.timestamps[0])
        # Before the epoch's window elapses the collector has nothing.
        assert measurer.rotate(start + 0.5) == {}
        # Once the window elapses, rotation ships it: the collector sees
        # the epoch's flows without waiting for the next packet.
        shipped = measurer.rotate(start + 1.0)
        assert len(shipped) > 0
        stats = measurer.finalize()
        assert stats.epochs == 1  # the tail ship found nothing new

    def test_rotate_aligns_with_packet_driven_shipping(self, trace):
        """A rotated run reports the same collector totals at the end."""
        plain = DelegatingMeasurer(256 * 1024, 1.0, 0.0)
        plain.ingest(trace)
        plain.finalize()
        rotated = DelegatingMeasurer(256 * 1024, 1.0, 0.0)
        rotated.ingest(trace)
        rotated.rotate(float(trace.timestamps[-1]) + 5.0)
        rotated.finalize()
        assert rotated.estimates() == plain.estimates()

    def test_rotate_before_any_packet(self):
        measurer = DelegatingMeasurer(64 * 1024, 1.0, 0.0)
        assert measurer.rotate(123.0) == {}


class TestSaturationTimeDistribution:
    def test_pmf_mass_and_mean_match_coupon_sum(self):
        pmf = saturation_time_pmf(8, 6, 300)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)
        mean = float((np.arange(301) * pmf).sum())
        assert mean == pytest.approx(coupon_partial_sum(8, 6), abs=1e-6)

    def test_pmf_zero_before_minimum(self):
        pmf = saturation_time_pmf(8, 6, 20)
        assert np.all(pmf[:6] == 0.0)  # needs at least 6 packets
        assert pmf[6] > 0.0

    def test_variance_formula(self):
        # Monte-Carlo check of the closed form.
        rng = np.random.default_rng(0)
        samples = []
        for _ in range(4000):
            seen = set()
            count = 0
            while len(seen) < 6:
                seen.add(int(rng.integers(8)))
                count += 1
            samples.append(count)
        assert np.var(samples) == pytest.approx(
            saturation_time_variance(8, 6), rel=0.15
        )

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            saturation_time_pmf(8, 0, 10)
        with pytest.raises(ConfigurationError):
            saturation_time_variance(8, 9)


class TestSingleFlowRegulatorModel:
    @pytest.fixture(scope="class")
    def model(self):
        return SingleFlowRegulatorModel(vector_bits=8, saturation_fill=0.7)

    def test_mice_never_pass(self, model):
        # A flow needs ≥ 36 packets (6 L1 rounds × 6 L2 bits) to pass.
        assert model.passage_probability(35) == 0.0
        assert model.expected_insertions(20) == 0.0

    def test_rate_converges_to_inverse_capacity(self, model):
        capacity = coupon_partial_sum(8, 6) ** 2
        rate = model.expected_regulation_rate(5000)
        assert rate == pytest.approx(1.0 / capacity, rel=0.05)

    def test_passage_probability_monotone(self, model):
        values = [model.passage_probability(s) for s in (40, 80, 120, 200)]
        assert values == sorted(values)
        assert values[-1] > 0.9

    def test_matches_simulation(self, model):
        """The chain predicts the simulator's insertion count."""
        packets = 400
        runs = 60
        insertions = []
        for seed in range(runs):
            regulator = FlowRegulator(64, vector_bits=8, seed=seed)
            rng = np.random.default_rng(1000 + seed)
            for _ in range(packets):
                regulator.process(1, int(rng.integers(8)), int(rng.integers(8)))
            insertions.append(regulator.stats.insertions)
        assert np.mean(insertions) == pytest.approx(
            model.expected_insertions(packets), rel=0.2
        )

    def test_invalid_inputs(self, model):
        with pytest.raises(ConfigurationError):
            model.expected_insertions(-1)
        with pytest.raises(ConfigurationError):
            SingleFlowRegulatorModel(vector_bits=1)
