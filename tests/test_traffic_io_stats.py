"""Tests for trace persistence and trace statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceFormatError
from repro.traffic import (
    CaidaLikeConfig,
    build_caida_like_trace,
    fit_zipf_exponent,
    load_trace,
    save_trace,
    summarize_trace,
)
from repro.traffic.stats import flow_size_ccdf


@pytest.fixture(scope="module")
def trace():
    return build_caida_like_trace(CaidaLikeConfig(num_flows=2000, duration=5.0, seed=9))


class TestTraceIO:
    def test_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.timestamps, trace.timestamps)
        assert np.array_equal(loaded.flow_ids, trace.flow_ids)
        assert np.array_equal(loaded.sizes, trace.sizes)
        assert np.array_equal(loaded.flows.key64, trace.flows.key64)
        assert loaded.flows.hash_seed == trace.flows.hash_seed

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError):
            load_trace(tmp_path / "absent.npz")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, version=np.int64(1), timestamps=np.array([0.0]))
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_wrong_version(self, trace, tmp_path):
        path = tmp_path / "versioned.npz"
        save_trace(trace, path)
        data = dict(np.load(path))
        data["version"] = np.int64(99)
        np.savez(path, **data)
        with pytest.raises(TraceFormatError):
            load_trace(path)


class TestStats:
    def test_summary_fields(self, trace):
        summary = summarize_trace(trace)
        assert summary.num_flows == trace.num_flows
        assert summary.num_packets == trace.num_packets
        assert 0.0 < summary.mice_fraction < 1.0
        assert 0.0 < summary.top_1pct_packet_share <= 1.0
        assert summary.zipf_exponent > 0.5
        assert len(summary.rows()) == 9

    def test_fit_zipf_on_exact_powerlaw(self):
        ranks = np.arange(1, 2001, dtype=np.float64)
        sizes = 1e6 * ranks**-1.3
        assert fit_zipf_exponent(sizes) == pytest.approx(1.3, abs=0.01)

    def test_fit_zipf_rejects_degenerate(self):
        with pytest.raises(ConfigurationError):
            fit_zipf_exponent(np.array([5.0]))

    def test_ccdf_monotone(self, trace):
        values, ccdf = flow_size_ccdf(trace.ground_truth_packets())
        assert np.all(np.diff(values) > 0)
        assert np.all(np.diff(ccdf) <= 0)
        assert ccdf[0] == pytest.approx(1.0)

    def test_ccdf_empty(self):
        values, ccdf = flow_size_ccdf(np.array([]))
        assert len(values) == 0 and len(ccdf) == 0
