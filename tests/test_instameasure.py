"""Tests for the single-core InstaMeasure engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InstaMeasure, InstaMeasureConfig
from repro.core.instameasure import run_measurement
from repro.traffic import CaidaLikeConfig, build_caida_like_trace


@pytest.fixture(scope="module")
def trace():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=5000, duration=20.0, seed=21)
    )


def _small_config(**overrides):
    defaults = dict(l1_memory_bytes=4096, wsaf_entries=1 << 14, seed=0)
    defaults.update(overrides)
    return InstaMeasureConfig(**defaults)


class TestProcessTrace:
    def test_regulation_rate_near_one_percent(self, trace):
        engine = InstaMeasure(_small_config())
        result = engine.process_trace(trace)
        # Paper Fig 7: FlowRegulator passes ~1 % of packets to the WSAF.
        assert 0.002 <= result.regulation_rate <= 0.03

    def test_l1_rate_an_order_of_magnitude_higher(self, trace):
        engine = InstaMeasure(_small_config())
        result = engine.process_trace(trace)
        stats = result.regulator_stats
        # Fig 7: RCC (single layer) regulates at ~12 %, FR at ~1 %.
        assert stats.l1_saturation_rate > 5 * result.regulation_rate

    def test_large_flow_accuracy(self, trace):
        engine = InstaMeasure(_small_config())
        engine.process_trace(trace)
        est_packets, est_bytes = engine.estimates_for(trace)
        truth_packets = trace.ground_truth_packets()
        truth_bytes = trace.ground_truth_bytes()
        big = truth_packets >= 2000
        assert big.sum() >= 3
        rel_p = np.abs(est_packets[big] - truth_packets[big]) / truth_packets[big]
        rel_b = np.abs(est_bytes[big] - truth_bytes[big]) / truth_bytes[big]
        assert rel_p.mean() < 0.12
        assert rel_b.mean() < 0.12

    def test_mice_mostly_absent_from_wsaf(self, trace):
        engine = InstaMeasure(_small_config())
        engine.process_trace(trace)
        est_packets, _ = engine.estimates_for(trace)
        truth = trace.ground_truth_packets()
        mice = truth <= 10
        # "Saturation-based decoding … allows only elephant flows through".
        assert (est_packets[mice] > 0).mean() < 0.05

    def test_estimates_with_residual_reduce_truncation(self, trace):
        engine = InstaMeasure(_small_config())
        engine.process_trace(trace)
        plain, _ = engine.estimates_for(trace)
        with_residual, _ = engine.estimates_for(trace, include_residual=True)
        truth = trace.ground_truth_packets().astype(float)
        mid = (truth >= 200) & (truth <= 5000)
        err_plain = np.abs(plain[mid] - truth[mid]).mean()
        err_residual = np.abs(with_residual[mid] - truth[mid]).mean()
        assert err_residual <= err_plain

    def test_callback_sees_every_insertion(self, trace):
        events = []
        engine = InstaMeasure(_small_config())
        result = engine.process_trace(
            trace, on_accumulate=lambda k, p, b, t: events.append((k, p, b, t))
        )
        assert len(events) == result.insertions
        # Timestamps are delivered in trace order.
        times = [event[3] for event in events]
        assert times == sorted(times)

    def test_result_counters_consistent(self, trace):
        engine = InstaMeasure(_small_config())
        result = engine.process_trace(trace)
        assert result.packets == trace.num_packets
        assert result.insertions == engine.wsaf.insertions + engine.wsaf.updates + engine.wsaf.rejected
        assert result.python_pps > 0

    def test_run_measurement_helper(self, trace):
        engine, result = run_measurement(trace, _small_config())
        assert result.packets == trace.num_packets
        assert len(engine.wsaf) > 0


class TestPathEquivalence:
    """process_trace is an inlined specialization of process_packet."""

    def test_identical_state_given_identical_randomness(self):
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=800, duration=5.0, seed=22)
        )
        config = _small_config(seed=9)

        fast = InstaMeasure(config)
        fast.process_trace(trace)

        slow = InstaMeasure(config)
        rng = np.random.default_rng(config.seed ^ 0xB17)
        bits1 = rng.integers(0, 8, size=trace.num_packets, dtype=np.uint8)
        bits2 = rng.integers(0, 8, size=trace.num_packets, dtype=np.uint8)
        keys = trace.flows.key64
        for p in range(trace.num_packets):
            slow.process_packet(
                int(keys[trace.flow_ids[p]]),
                int(trace.sizes[p]),
                float(trace.timestamps[p]),
                bit1=int(bits1[p]),
                bit2=int(bits2[p]),
            )

        assert fast.regulator.l1.words == slow.regulator.l1.words
        for bank_fast, bank_slow in zip(fast.regulator.l2, slow.regulator.l2):
            assert bank_fast.words == bank_slow.words
        assert fast.wsaf.estimates() == slow.wsaf.estimates()
        assert fast.regulator.stats.packets == slow.regulator.stats.packets
        assert fast.regulator.stats.insertions == slow.regulator.stats.insertions
        assert (
            fast.regulator.stats.l1_saturations
            == slow.regulator.stats.l1_saturations
        )
        for bank_fast, bank_slow in zip(fast.regulator.l2, slow.regulator.l2):
            assert bank_fast.packets_encoded == bank_slow.packets_encoded
            assert bank_fast.saturations == bank_slow.saturations


class TestRotation:
    def test_rotate_snapshots_and_expires(self, trace):
        engine = InstaMeasure(_small_config(gc_timeout=5.0))
        first_half = trace.time_slice(0.0, 10.0)
        second_half = trace.time_slice(10.0, 1e9)
        engine.process_trace(first_half)
        populated = len(engine.wsaf)
        snapshot = engine.rotate(now=float(trace.timestamps[-1]) + 100.0)
        assert len(snapshot) == populated
        assert len(engine.wsaf) == 0  # everything was idle past the timeout
        assert engine.regulator.stats.packets == 0
        # The engine keeps measuring across the rotation.
        result = engine.process_trace(second_half)
        assert result.packets == second_half.num_packets

    def test_rotation_preserves_retained_counts(self, trace):
        """Sketch contents survive rotation, so a flow straddling the
        boundary loses nothing relative to an unrotated run."""
        half_time = float(trace.timestamps[0]) + 10.0
        split_a = trace.time_slice(0.0, half_time)
        split_b = trace.time_slice(half_time, 1e9)

        rotated = InstaMeasure(_small_config())
        rotated.process_trace(split_a)
        rotated.rotate(now=half_time, wsaf_timeout=None)
        rotated.process_trace(split_b)
        est_rotated, _ = rotated.estimates_for(trace)

        plain = InstaMeasure(_small_config())
        plain.process_trace(trace)
        est_plain, _ = plain.estimates_for(trace)

        # Each process_trace call draws its own randomness stream, so the
        # two runs differ in noise; the claim is that rotation costs no
        # systematic accuracy: both runs track ground truth equally well.
        truth = trace.ground_truth_packets().astype(float)
        big = truth >= 2000
        err_rotated = np.abs(est_rotated[big] - truth[big]) / truth[big]
        err_plain = np.abs(est_plain[big] - truth[big]) / truth[big]
        assert err_rotated.mean() < 0.12
        assert err_rotated.mean() < err_plain.mean() + 0.05

    def test_rotate_uses_explicit_timeout(self, trace):
        engine = InstaMeasure(_small_config())
        engine.process_trace(trace.time_slice(0.0, 5.0))
        before = len(engine.wsaf)
        engine.rotate(now=1e9, wsaf_timeout=1e12)  # nothing is old enough
        assert len(engine.wsaf) == before


class TestMemoryScaling:
    def test_more_memory_improves_accuracy(self):
        """Fig 10: error decreases as L1 memory grows (denser sharing hurts)."""
        trace = build_caida_like_trace(
            CaidaLikeConfig(num_flows=20_000, duration=20.0, seed=23)
        )
        truth = trace.ground_truth_packets().astype(float)
        big = truth >= 1000
        errors = {}
        for l1_bytes in (512, 16 * 1024):
            engine = InstaMeasure(_small_config(l1_memory_bytes=l1_bytes))
            engine.process_trace(trace)
            est, _ = engine.estimates_for(trace)
            errors[l1_bytes] = np.abs(est[big] - truth[big]) / truth[big]
        assert errors[16 * 1024].mean() < errors[512].mean()
