"""Tests for the Counter Tree baseline (the cited multi-layer prior)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import CounterTree
from repro.errors import ConfigurationError
from repro.traffic import CaidaLikeConfig, build_caida_like_trace


@pytest.fixture(scope="module")
def trace():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=5000, duration=12.0, seed=171)
    )


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            CounterTree(1024, counter_bits=1)
        with pytest.raises(ConfigurationError):
            CounterTree(1024, degree=1)
        with pytest.raises(ConfigurationError):
            CounterTree(1024, num_layers=0)
        with pytest.raises(ConfigurationError):
            CounterTree(4, counters_per_flow=16)

    def test_layers_shrink_geometrically(self):
        tree = CounterTree(64 * 1024, degree=4, num_layers=3)
        assert len(tree.layers[1]) == -(-len(tree.layers[0]) // 4)
        assert len(tree.layers[2]) == -(-len(tree.layers[1]) // 4)

    def test_memory_within_budget(self):
        tree = CounterTree(64 * 1024, counter_bits=8, num_layers=3)
        assert tree.memory_bytes <= 64 * 1024 * 1.05


class TestCarryMechanics:
    def test_overflow_carries_to_parent(self):
        tree = CounterTree(1024, counter_bits=4, degree=2, num_layers=2, seed=1)
        leaf = tree.flow_leaves(42)[0]
        for _ in range(16):  # exactly one wrap of a 4-bit counter
            tree._bump(0, leaf)
        assert tree.layers[0][leaf] == 0
        assert tree.layers[1][leaf // 2] == 1
        assert tree.overflows == 1

    def test_virtual_value_reassembles_count(self):
        tree = CounterTree(1024, counter_bits=4, degree=2, num_layers=3, seed=2)
        leaf = tree.flow_leaves(7)[0]
        for _ in range(1000):
            tree._bump(0, leaf)
        assert tree.virtual_value(leaf) == 1000

    def test_single_flow_decode_near_exact(self):
        tree = CounterTree(
            16 * 1024, counter_bits=4, num_layers=3, counters_per_flow=4, seed=3
        )
        for i in range(5000):
            tree.encode(42, i % 4)
        assert tree.decode(42) == pytest.approx(5000, rel=0.01)

    def test_encode_rejects_bad_choice(self):
        tree = CounterTree(1024, counters_per_flow=4)
        with pytest.raises(ConfigurationError):
            tree.encode(1, 4)


class TestTraceAccuracy:
    def test_elephant_accuracy(self, trace):
        tree = CounterTree(64 * 1024, counter_bits=8, num_layers=3, seed=4)
        tree.encode_trace(trace)
        truth = trace.ground_truth_packets().astype(float)
        big = truth >= 1000
        estimates = tree.decode_flows(trace.flows.key64[big])
        rel = np.abs(estimates - truth[big]) / truth[big]
        assert rel.mean() < 0.15

    def test_scalar_vector_decode_agree(self, trace):
        tree = CounterTree(32 * 1024, seed=5)
        tree.encode_trace(trace)
        keys = trace.flows.key64[:10]
        vector = tree.decode_flows(keys)
        for i, key in enumerate(keys):
            assert vector[i] == pytest.approx(tree.decode(int(key)))

    def test_small_counters_extend_range(self, trace):
        """The design point: 4-bit leaves count far beyond 15 via carries."""
        tree = CounterTree(32 * 1024, counter_bits=4, num_layers=4, seed=6)
        tree.encode_trace(trace)
        truth = trace.ground_truth_packets().astype(float)
        top = int(np.argmax(truth))
        assert truth[top] > 15
        assert tree.decode(int(trace.flows.key64[top])) == pytest.approx(
            truth[top], rel=0.3
        )

    def test_offline_total_consistency(self, trace):
        """Every packet is represented exactly once across virtual leaves."""
        tree = CounterTree(128 * 1024, counter_bits=8, num_layers=2, degree=2, seed=7)
        tree.encode_trace(trace)
        virtual = tree._virtual_leaves()
        # Parents shared by `degree` children are counted once per child;
        # subtract the double counting to recover the exact packet total.
        parents = tree.layers[1][np.arange(tree.num_leaves) // tree.degree]
        double_counted = (tree.degree - 1) / tree.degree * (
            parents.astype(float) * (1 << tree.counter_bits)
        )
        assert (virtual - double_counted).sum() == pytest.approx(
            tree.total_packets, rel=0.01
        )
