"""Unbounded chunk sources: pcap-lite tailing and socket feeds.

The contract under test: a streaming source cutting chunks out of a
byte stream must reproduce *exactly* the chunks a batch
:class:`TraceChunkSource` would cut from the equivalent loaded trace —
same packet order, same epoch indices, same per-packet flow keys — no
matter how the bytes dribble in, and an engine fed from one must land
on the same estimates regardless of chunk geometry (the unknown-length
block-draw guarantee).
"""

from __future__ import annotations

import os
import socket
import threading
import time

import numpy as np
import pytest

from repro.core import InstaMeasure, InstaMeasureConfig
from repro.errors import ConfigurationError, TraceFormatError
from repro.pipeline import (
    PacketRecordChunkSource,
    Pipeline,
    SocketChunkSource,
    TraceChunkSource,
    trace_from_records,
)
from repro.traffic import CaidaLikeConfig, build_caida_like_trace
from repro.traffic.pcaplite import (
    HEADER_BYTES,
    RECORD_BYTES,
    RECORD_DTYPE,
    PacketRecordReader,
    PacketRecordWriter,
    write_pcaplite,
)


@pytest.fixture(scope="module")
def trace():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=600, duration=5.0, seed=23)
    )


@pytest.fixture(scope="module")
def capture(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("capture") / "trace.impl"
    write_pcaplite(trace, path)
    return str(path)


def _config() -> InstaMeasureConfig:
    return InstaMeasureConfig(
        l1_memory_bytes=2_048, wsaf_entries=1 << 11, seed=9
    )


def _chunk_signature(chunk):
    trace = chunk.trace
    keys = trace.flows.key64[trace.flow_ids]
    return (
        chunk.index,
        chunk.begin,
        chunk.end,
        chunk.epoch,
        trace.timestamps.tolist(),
        trace.sizes.tolist(),
        keys.tolist(),
    )


class TestTraceFromRecords:
    def test_round_trips_packets_and_flows(self, trace, capture):
        with PacketRecordReader(capture) as reader:
            records = reader.read_block(trace.num_packets)
        rebuilt = trace_from_records(np.array(records))
        assert rebuilt.num_packets == trace.num_packets
        np.testing.assert_allclose(rebuilt.timestamps, trace.timestamps)
        np.testing.assert_array_equal(rebuilt.sizes, trace.sizes)
        # Flow indices may be renumbered but the per-packet key stream
        # (what the engine hashes) must be identical.
        np.testing.assert_array_equal(
            rebuilt.flows.key64[rebuilt.flow_ids],
            trace.flows.key64[trace.flow_ids],
        )

    def test_empty_block(self):
        rebuilt = trace_from_records(np.empty(0, dtype=RECORD_DTYPE))
        assert rebuilt.num_packets == 0


class TestPacketRecordChunkSource:
    def test_matches_batch_source_exactly(self, trace, capture):
        batch = TraceChunkSource(trace, chunk_size=700, epoch_seconds=1.0)
        stream = PacketRecordChunkSource(
            capture, chunk_size=700, epoch_seconds=1.0
        )
        batch_chunks = [_chunk_signature(c) for c in batch]
        stream_chunks = [_chunk_signature(c) for c in stream]
        assert stream_chunks == batch_chunks

    def test_unbounded_metadata(self, capture):
        source = PacketRecordChunkSource(capture, chunk_size=512)
        assert source.total_packets is None
        assert source.start_time is None
        chunks = list(source)
        assert source.start_time is not None
        assert chunks[0].total_packets is None

    def test_engine_chunk_geometry_invariant(self, trace, capture):
        estimates = []
        for chunk_size in (311, 4_096):
            engine = InstaMeasure(_config())
            Pipeline(engine).run(
                PacketRecordChunkSource(capture, chunk_size=chunk_size)
            )
            estimates.append(engine.estimates())
        assert estimates[0] == estimates[1]

    def test_start_record_resumes_numbering(self, trace, capture):
        whole = list(PacketRecordChunkSource(capture, chunk_size=900))
        source = PacketRecordChunkSource(
            capture, chunk_size=900, start_record=1_800
        )
        tail = list(source)
        assert tail[0].begin == 1_800
        assert sum(c.num_packets for c in tail) == trace.num_packets - 1_800
        np.testing.assert_allclose(
            tail[0].trace.timestamps, whole[2].trace.timestamps
        )

    def test_seek_packets_equivalent_to_start_record(self, capture):
        source = PacketRecordChunkSource(capture, chunk_size=900)
        source.seek_packets(1_800)
        assert next(iter(source)).begin == 1_800

    def test_follow_mode_tails_a_growing_file(self, trace, tmp_path):
        path = tmp_path / "grow.impl"
        full = trace
        cut = full.num_packets // 2
        writer = PacketRecordWriter(path)
        tuples = [full.flows.five_tuple(i) for i in range(full.num_flows)]
        for p in range(cut):
            writer.write(
                full.timestamps[p], tuples[full.flow_ids[p]], int(full.sizes[p])
            )
        writer.flush()

        source = PacketRecordChunkSource(
            path, chunk_size=1_000, follow=True, poll_interval=0.01
        )
        seen = []
        done = threading.Event()

        def consume():
            for chunk in source:
                seen.append(chunk.num_packets)
            done.set()

        thread = threading.Thread(target=consume, daemon=True)
        thread.start()
        # A follow-mode source holds back a partial chunk (more data may
        # come), so it can only have emitted down to the last full budget.
        visible = cut - (cut % 1_000)
        deadline = time.monotonic() + 10.0
        while sum(seen) < visible and time.monotonic() < deadline:
            time.sleep(0.01)
        assert sum(seen) == visible
        for p in range(cut, full.num_packets):
            writer.write(
                full.timestamps[p], tuples[full.flow_ids[p]], int(full.sizes[p])
            )
        writer.flush()
        writer.close()
        visible = full.num_packets - (full.num_packets % 1_000)
        deadline = time.monotonic() + 10.0
        while sum(seen) < visible and time.monotonic() < deadline:
            time.sleep(0.01)
        assert sum(seen) == visible
        # stop() flushes the buffered partial tail as final chunks.
        source.stop()
        assert done.wait(10.0)
        thread.join(timeout=10.0)
        assert sum(seen) == full.num_packets

    def test_non_follow_stops_at_eof(self, trace, capture):
        chunks = list(PacketRecordChunkSource(capture, chunk_size=10_000))
        assert sum(c.num_packets for c in chunks) == trace.num_packets

    def test_rejects_bad_parameters(self, capture):
        with pytest.raises(ConfigurationError):
            PacketRecordChunkSource(capture, chunk_size=0)
        with pytest.raises(ConfigurationError):
            PacketRecordChunkSource(capture, epoch_seconds=0.0)
        with pytest.raises(ConfigurationError):
            PacketRecordChunkSource(capture, start_record=-1)


class TestSocketChunkSource:
    def _serve_bytes(self, payload: bytes, dribble: int):
        """Serve ``payload`` over a one-shot TCP socket in ragged pieces."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)

        def run():
            conn, _ = listener.accept()
            with conn:
                for at in range(0, len(payload), dribble):
                    conn.sendall(payload[at : at + dribble])
            listener.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return listener.getsockname()[1], thread

    def test_matches_file_source(self, trace, capture):
        payload = open(capture, "rb").read()
        port, thread = self._serve_bytes(payload, dribble=1_009)
        stream = SocketChunkSource(
            "127.0.0.1", port, chunk_size=700, epoch_seconds=1.0,
            poll_interval=0.01,
        )
        got = [_chunk_signature(c) for c in stream]
        thread.join(timeout=10.0)
        want = [
            _chunk_signature(c)
            for c in PacketRecordChunkSource(
                capture, chunk_size=700, epoch_seconds=1.0
            )
        ]
        assert got == want

    def test_rejects_bad_header(self):
        port, thread = self._serve_bytes(b"NOPE" + b"\x00" * 12, dribble=16)
        stream = SocketChunkSource("127.0.0.1", port, poll_interval=0.01)
        with pytest.raises(TraceFormatError):
            list(stream)
        thread.join(timeout=10.0)

    def test_rejects_mid_record_eof(self, capture):
        payload = open(capture, "rb").read()
        torn = payload[: HEADER_BYTES + RECORD_BYTES * 3 + 7]
        port, thread = self._serve_bytes(torn, dribble=4_096)
        stream = SocketChunkSource("127.0.0.1", port, poll_interval=0.01)
        with pytest.raises(TraceFormatError):
            list(stream)
        thread.join(timeout=10.0)

    def test_cannot_seek(self):
        source = SocketChunkSource("127.0.0.1", 1)
        with pytest.raises(ConfigurationError):
            source.seek_packets(10)
