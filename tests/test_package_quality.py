"""Package-quality meta-tests: exports, docstrings, doc/bench consistency.

These guard the deliverables themselves: every ``__all__`` name must
resolve, every public item must be documented, and the README/DESIGN tables
must reference benchmarks that actually exist (and vice versa).
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

REPO_ROOT = pathlib.Path(repro.__file__).resolve().parent.parent.parent
PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.core",
    "repro.detection",
    "repro.hashing",
    "repro.kernels",
    "repro.memmodel",
    "repro.simulate",
    "repro.traffic",
]


def _all_modules():
    names = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                names.append(f"{package_name}.{info.name}")
    names.append("repro.cli")
    names.append("repro.errors")
    return sorted(set(names))


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", [])
        assert exported, f"{package_name} should declare __all__"
        for name in exported:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_is_sorted_unique(self, package_name):
        exported = importlib.import_module(package_name).__all__
        assert len(exported) == len(set(exported))


class TestDocstrings:
    @pytest.mark.parametrize("module_name", _all_modules())
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip()

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_public_items_documented(self, package_name):
        package = importlib.import_module(package_name)
        undocumented = []
        for name in getattr(package, "__all__", []):
            item = getattr(package, name)
            if inspect.isclass(item) or inspect.isfunction(item):
                if not (item.__doc__ and item.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, f"{package_name}: {undocumented}"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_public_class_methods_documented(self, package_name):
        package = importlib.import_module(package_name)
        undocumented = []
        for name in getattr(package, "__all__", []):
            item = getattr(package, name)
            if not inspect.isclass(item):
                continue
            for method_name, method in inspect.getmembers(item, inspect.isfunction):
                if method_name.startswith("_"):
                    continue
                if method.__qualname__.split(".")[0] != item.__name__:
                    continue  # inherited
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
        assert not undocumented, f"{package_name}: {undocumented}"


class TestDocConsistency:
    def test_readme_benches_exist(self):
        readme = (REPO_ROOT / "README.md").read_text()
        bench_dir = REPO_ROOT / "benchmarks"
        for line in readme.splitlines():
            if "| `bench_" not in line:
                continue
            name = line.split("`")[1]
            for candidate in name.split("/"):
                stem = candidate if candidate.startswith("bench_") else None
                if stem is None:
                    continue
            # The table cell may abbreviate several benches with slashes.
            first = name.split("/")[0]
            matches = list(bench_dir.glob(f"{first}*.py"))
            assert matches, f"README references missing bench {first}"

    def test_every_bench_file_is_documented(self):
        documented = (REPO_ROOT / "README.md").read_text() + (
            REPO_ROOT / "DESIGN.md"
        ).read_text()
        for bench in (REPO_ROOT / "benchmarks").glob("bench_*.py"):
            stem = bench.stem
            # Abbreviated table rows (bench_ablation_layers/wsaf/fill) cover
            # their variants; check for the family prefix.
            family = "_".join(stem.split("_")[:2])
            assert family in documented, f"{stem} not mentioned in docs"

    def test_experiments_covers_every_figure(self):
        experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for figure in ("Fig 1", "Fig 6", "Fig 7", "Fig 8", "Fig 9(a)",
                       "Fig 9(b)", "Fig 10", "Fig 11", "Fig 12", "Fig 13",
                       "Fig 14", "CSM"):
            assert figure in experiments, f"EXPERIMENTS.md missing {figure}"

    def test_examples_listed_in_readme(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for example in (REPO_ROOT / "examples").glob("*.py"):
            assert example.name in readme, f"{example.name} not in README"

    def test_version_consistent(self):
        pyproject = (REPO_ROOT / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in pyproject


class TestReadmeCode:
    def _python_blocks(self):
        readme = (REPO_ROOT / "README.md").read_text()
        blocks = []
        inside = False
        current: "list[str]" = []
        for line in readme.splitlines():
            if line.strip() == "```python":
                inside = True
                current = []
                continue
            if inside and line.strip() == "```":
                inside = False
                blocks.append("\n".join(current))
                continue
            if inside:
                current.append(line)
        return blocks

    def test_readme_has_python_examples(self):
        assert len(self._python_blocks()) >= 2

    def test_readme_python_blocks_execute(self):
        """The quickstart snippets in the README must actually run.

        Heavyweight constants are shrunk so the doc check stays fast; the
        code paths exercised are identical.
        """
        namespace: "dict[str, object]" = {}
        for block in self._python_blocks():
            code = block.replace("20_000", "2_000")
            exec(compile(code, "<README>", "exec"), namespace)  # noqa: S102
        assert "engine" in namespace  # the quickstart built an engine
