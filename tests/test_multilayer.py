"""Tests for the N-layer FlowRegulator extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FlowRegulator, MultiLayerRegulator, required_layers_for_margin
from repro.errors import ConfigurationError


def _drive(regulator, packets, key=42, seed=0):
    rng = np.random.default_rng(seed)
    bits = regulator.vector_bits
    total = 0.0
    for _ in range(packets):
        est = regulator.process(
            key, [int(b) for b in rng.integers(0, bits, size=regulator.num_layers)]
        )
        if est is not None:
            total += est
    return total


class TestConstruction:
    def test_layer_bounds(self):
        with pytest.raises(ConfigurationError):
            MultiLayerRegulator(64, num_layers=0)
        with pytest.raises(ConfigurationError):
            MultiLayerRegulator(64, num_layers=5)

    def test_sketch_counts(self):
        # 8-bit vectors → 3 noise levels → 1, 1+3, 1+3+9 sketches.
        assert MultiLayerRegulator(64, num_layers=1).num_sketches == 1
        assert MultiLayerRegulator(64, num_layers=2).num_sketches == 4
        assert MultiLayerRegulator(64, num_layers=3).num_sketches == 13

    def test_memory_scales_with_sketches(self):
        regulator = MultiLayerRegulator(1024, num_layers=3)
        assert regulator.total_memory_bytes == 13 * 1024

    def test_two_layer_matches_flowregulator_geometry(self):
        multi = MultiLayerRegulator(1024, num_layers=2, seed=3)
        paper = FlowRegulator(1024, seed=3)
        assert multi.total_memory_bytes == paper.total_memory_bytes
        assert multi.retention_capacity == pytest.approx(paper.retention_capacity)
        assert multi.place(77) == paper.place(77)

    def test_capacity_is_power_of_single_layer(self):
        single = MultiLayerRegulator(64, num_layers=1).retention_capacity
        triple = MultiLayerRegulator(64, num_layers=3).retention_capacity
        assert triple == pytest.approx(single**3)


class TestDataPath:
    def test_single_layer_rate(self):
        regulator = MultiLayerRegulator(64, num_layers=1, seed=1)
        _drive(regulator, 50_000, seed=1)
        assert regulator.stats.regulation_rate == pytest.approx(
            1 / regulator.retention_capacity, rel=0.15
        )

    def test_each_layer_divides_rate_by_capacity(self):
        rates = {}
        for layers in (1, 2, 3):
            regulator = MultiLayerRegulator(64, num_layers=layers, seed=2)
            _drive(regulator, 120_000, seed=2)
            rates[layers] = regulator.stats.regulation_rate
        assert rates[2] < rates[1] / 5
        assert rates[3] < rates[2] / 5

    def test_estimates_remain_accurate(self):
        packets = 150_000
        regulator = MultiLayerRegulator(64, num_layers=3, seed=4)
        total = _drive(regulator, packets, seed=4)
        assert total == pytest.approx(packets, rel=0.1)

    def test_requires_bit_choice_per_layer(self):
        regulator = MultiLayerRegulator(64, num_layers=3, seed=5)
        with pytest.raises(ConfigurationError):
            regulator.process(1, [0, 1])

    def test_reset(self):
        regulator = MultiLayerRegulator(64, num_layers=2, seed=6)
        _drive(regulator, 1000, seed=6)
        regulator.reset()
        assert regulator.stats.packets == 0
        assert all(w == 0 for w in regulator.l1.words)


class TestEngineIntegration:
    """InstaMeasure accepts non-default regulator depths."""

    @pytest.fixture(scope="class")
    def trace(self):
        from repro.traffic import CaidaLikeConfig, build_caida_like_trace

        return build_caida_like_trace(
            CaidaLikeConfig(num_flows=3000, duration=8.0, seed=141)
        )

    def _run(self, trace, num_layers):
        from repro.core import InstaMeasure, InstaMeasureConfig

        engine = InstaMeasure(
            InstaMeasureConfig(
                l1_memory_bytes=4096,
                wsaf_entries=1 << 13,
                num_layers=num_layers,
            )
        )
        result = engine.process_trace(trace)
        return engine, result

    def test_rates_ordered_by_depth(self, trace):
        rates = {}
        for layers in (1, 2, 3):
            _engine, result = self._run(trace, layers)
            assert result.packets == trace.num_packets
            rates[layers] = result.regulation_rate
        assert rates[1] > rates[2] > rates[3]

    def test_three_layer_estimates_usable(self, trace):
        engine, _result = self._run(trace, 3)
        est, _ = engine.estimates_for(trace, include_residual=True)
        truth = trace.ground_truth_packets().astype(float)
        top = int(np.argmax(truth))
        assert est[top] == pytest.approx(truth[top], rel=0.4)

    def test_one_layer_callback_fires(self, trace):
        from repro.core import InstaMeasure, InstaMeasureConfig

        events = []
        engine = InstaMeasure(
            InstaMeasureConfig(
                l1_memory_bytes=4096, wsaf_entries=1 << 13, num_layers=1
            )
        )
        result = engine.process_trace(
            trace, on_accumulate=lambda k, p, b, t: events.append(t)
        )
        assert len(events) == result.insertions
        assert events == sorted(events)

    def test_per_packet_path_works_at_every_depth(self):
        from repro.core import InstaMeasure, InstaMeasureConfig

        for layers in (1, 2, 3, 4):
            engine = InstaMeasure(
                InstaMeasureConfig(
                    l1_memory_bytes=256, wsaf_entries=64, num_layers=layers
                )
            )
            for _ in range(500):
                engine.process_packet(42, 100, 0.0)
            assert engine.regulator.stats.packets == 500


class TestLayerPlanning:
    def test_two_layers_reach_dram_margin(self):
        # The paper's configuration: ~1 % needs two layers of 8-bit vectors.
        assert required_layers_for_margin(0.05) == 2

    def test_tcam_margin_needs_more_layers(self):
        assert required_layers_for_margin(0.001) >= 3

    def test_rejects_silly_targets(self):
        with pytest.raises(ConfigurationError):
            required_layers_for_margin(0.0)
        with pytest.raises(ConfigurationError):
            required_layers_for_margin(1e-9)  # would need > MAX_LAYERS
