"""Tests for the RCC sketch (Recyclable Counter with Confinement)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RCCSketch, coupon_partial_sum
from repro.errors import ConfigurationError, DecodeError
from repro.memmodel import DRAM, AccessAccountant


class TestCouponPartialSum:
    def test_zero_bits(self):
        assert coupon_partial_sum(8, 0) == 0.0

    def test_one_bit_costs_one_packet(self):
        assert coupon_partial_sum(8, 1) == pytest.approx(1.0)

    def test_full_vector_is_harmonic(self):
        # Expected insertions to fill all b bits = b * H_b.
        b = 8
        expected = b * sum(1.0 / k for k in range(1, b + 1))
        assert coupon_partial_sum(b, b) == pytest.approx(expected)

    @given(st.integers(2, 64), st.integers(0, 64))
    def test_monotone_in_bits_set(self, b, s):
        if s + 1 <= b:
            assert coupon_partial_sum(b, s + 1) > coupon_partial_sum(b, s)

    def test_out_of_range_rejected(self):
        with pytest.raises(DecodeError):
            coupon_partial_sum(8, 9)
        with pytest.raises(DecodeError):
            coupon_partial_sum(8, -1)


class TestConstruction:
    def test_rejects_bad_word_bits(self):
        with pytest.raises(ConfigurationError):
            RCCSketch(1024, word_bits=16)

    def test_rejects_vector_wider_than_word(self):
        with pytest.raises(ConfigurationError):
            RCCSketch(1024, vector_bits=64, word_bits=32)

    def test_rejects_too_small_memory(self):
        with pytest.raises(ConfigurationError):
            RCCSketch(2, word_bits=32)

    def test_rejects_bad_fill(self):
        with pytest.raises(ConfigurationError):
            RCCSketch(1024, saturation_fill=0.0)

    def test_word_count(self):
        assert RCCSketch(1024, word_bits=32).num_words == 256
        assert RCCSketch(1024, word_bits=64).num_words == 128


class TestPaperConstants:
    """The reconstruction must reproduce the paper's published capacities."""

    def test_8bit_vector_counts_up_to_9(self):
        sketch = RCCSketch(1024, vector_bits=8)
        assert 9.0 <= sketch.retention_capacity <= 10.0

    def test_64bit_vector_counts_up_to_77(self):
        sketch = RCCSketch(1024, vector_bits=64, word_bits=64)
        assert 76.0 <= sketch.retention_capacity <= 78.0

    def test_8bit_vector_has_three_noise_cases(self):
        # "the estimation can be divided into three cases" (Section III-A).
        assert RCCSketch(1024, vector_bits=8).noise_levels == 3

    def test_retention_grows_additively(self):
        # RCC's capacity growth with vector size is sub-linear (the paper's
        # argument for why enlarging RCC's vector is not viable).
        cap8 = RCCSketch(1024, vector_bits=8).retention_capacity
        cap64 = RCCSketch(1024, vector_bits=64, word_bits=64).retention_capacity
        assert cap64 < 8 * cap8 * 2  # far from multiplicative growth
        assert cap64 / cap8 < 10


class TestEncodeDecode:
    def test_single_flow_saturates_near_capacity(self):
        sketch = RCCSketch(64, vector_bits=8, seed=1)
        rng = np.random.default_rng(0)
        rounds = []
        packets = 0
        for _ in range(20000):
            packets += 1
            if sketch.encode(42, int(rng.integers(8))) is not None:
                rounds.append(packets)
                packets = 0
        mean_round = np.mean(rounds)
        assert mean_round == pytest.approx(sketch.retention_capacity, rel=0.15)

    def test_noise_level_in_range(self):
        sketch = RCCSketch(64, vector_bits=8, seed=2)
        rng = np.random.default_rng(1)
        seen = set()
        for _ in range(5000):
            noise = sketch.encode(7, int(rng.integers(8)))
            if noise is not None:
                seen.add(noise)
        assert seen <= {0, 1, 2}
        assert 2 in seen  # the common single-flow case

    def test_decode_rejects_out_of_range_noise(self):
        sketch = RCCSketch(64, vector_bits=8)
        with pytest.raises(DecodeError):
            sketch.decode(3)

    def test_decode_values_decrease_with_noise(self):
        sketch = RCCSketch(64, vector_bits=8)
        assert sketch.decode(0) > sketch.decode(1) > sketch.decode(2)

    def test_recycle_clears_vector(self):
        sketch = RCCSketch(64, vector_bits=8, seed=3)
        rng = np.random.default_rng(2)
        for _ in range(10000):
            if sketch.encode(9, int(rng.integers(8))) is not None:
                assert sketch.fill_count(9) == 0
                return
        pytest.fail("vector never saturated")

    def test_fill_count_grows(self):
        sketch = RCCSketch(64, vector_bits=8, seed=4)
        assert sketch.fill_count(5) == 0
        sketch.encode(5, 0)
        assert sketch.fill_count(5) == 1

    def test_partial_estimate_tracks_fill(self):
        sketch = RCCSketch(64, vector_bits=8, seed=5)
        sketch.encode(5, 0)
        assert sketch.partial_estimate(5) == pytest.approx(1.0)

    def test_saturation_rate_single_flow(self):
        sketch = RCCSketch(64, vector_bits=8, seed=6)
        rng = np.random.default_rng(3)
        for _ in range(20000):
            sketch.encode(11, int(rng.integers(8)))
        assert sketch.saturation_rate() == pytest.approx(
            1.0 / sketch.retention_capacity, rel=0.15
        )

    def test_estimation_accuracy_single_flow(self):
        # Accumulated decodes over many rounds approximate the true count.
        sketch = RCCSketch(64, vector_bits=8, seed=7)
        rng = np.random.default_rng(4)
        true_count = 50_000
        estimate = 0.0
        for _ in range(true_count):
            noise = sketch.encode(3, int(rng.integers(8)))
            if noise is not None:
                estimate += sketch.decode(noise)
        assert estimate == pytest.approx(true_count, rel=0.1)

    def test_reset(self):
        sketch = RCCSketch(64, vector_bits=8, seed=8)
        sketch.encode(1, 0)
        sketch.reset()
        assert sketch.fill_count(1) == 0
        assert sketch.packets_encoded == 0


class TestPlacement:
    def test_place_deterministic(self):
        sketch = RCCSketch(1024, seed=9)
        assert sketch.place(123) == sketch.place(123)

    def test_place_array_matches_scalar(self):
        sketch = RCCSketch(1024, seed=10)
        keys = np.array([1, 99, 2**63, 12345678], dtype=np.uint64)
        idx, off = sketch.place_array(keys)
        for i, key in enumerate(keys):
            assert (int(idx[i]), int(off[i])) == sketch.place(int(key))

    def test_same_seed_same_placement(self):
        a = RCCSketch(1024, seed=11)
        b = RCCSketch(1024, seed=11)
        assert a.place(77) == b.place(77)

    def test_window_masks_have_vector_bits_set(self):
        sketch = RCCSketch(64, vector_bits=8, word_bits=32)
        for mask in sketch._window_masks:
            assert bin(mask).count("1") == 8

    def test_cyclic_window_wraps(self):
        sketch = RCCSketch(64, vector_bits=8, word_bits=32)
        mask = sketch._window_masks[28]  # bits 28..31 and 0..3
        assert mask & (1 << 31)
        assert mask & 1

    @given(st.integers(0, 2**64 - 1))
    @settings(max_examples=50, deadline=None)
    def test_place_in_bounds(self, key):
        sketch = RCCSketch(256, seed=12)
        idx, offset = sketch.place(key)
        assert 0 <= idx < sketch.num_words
        assert 0 <= offset < sketch.word_bits


class TestAccounting:
    def test_each_packet_costs_one_read_one_write(self):
        accountant = AccessAccountant(DRAM)
        sketch = RCCSketch(64, accountant=accountant, label="l1")
        rng = np.random.default_rng(5)
        for _ in range(100):
            sketch.encode(1, int(rng.integers(8)))
        assert accountant.reads == 100
        assert accountant.writes == 100
        assert accountant.by_label() == {"l1": 200}
