"""The always-on measurement service: checkpoints, recovery, control.

The contract under test is the service tentpole: a daemon killed
between checkpoints and restarted over the same capture must finish
with *bit-identical* state — estimates, regulator words, stream
cursors — to a daemon that never died, and while running it must stay
queryable over the control socket at throughput comparable to the batch
pipeline.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core import InstaMeasureConfig
from repro.errors import ConfigurationError
from repro.pipeline import (
    PacketRecordChunkSource,
    Pipeline,
    ShardedStreamingMeasurer,
)
from repro.service import (
    CheckpointStore,
    ControlServer,
    MeasurementDaemon,
    send_command,
)
from repro.state import to_bytes
from repro.traffic import CaidaLikeConfig, build_caida_like_trace
from repro.traffic.pcaplite import write_pcaplite


@pytest.fixture(scope="module")
def trace():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=700, duration=6.0, seed=31)
    )


@pytest.fixture(scope="module")
def capture(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("service") / "trace.impl"
    write_pcaplite(trace, path)
    return str(path)


def _config() -> InstaMeasureConfig:
    return InstaMeasureConfig(
        l1_memory_bytes=2_048, wsaf_entries=1 << 11, seed=13
    )


def _source(capture, **kwargs):
    kwargs.setdefault("chunk_size", 1_000)
    kwargs.setdefault("epoch_seconds", 1.0)
    return PacketRecordChunkSource(capture, **kwargs)


def _run_daemon(daemon):
    daemon.start()
    assert daemon.wait(60.0)
    return daemon


def _shard_bytes(measurer):
    return [to_bytes(s) for s in measurer.snapshot_shards()]


class TestCheckpointStore:
    def _snapshots(self, capture, chunks=2):
        measurer = ShardedStreamingMeasurer(_config(), num_shards=2)
        source = _source(capture)
        for i, chunk in enumerate(source):
            if i == chunks:
                source.stop()
            measurer.ingest(chunk)
        return measurer.snapshot_shards()

    def test_save_latest_load_round_trip(self, capture, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        snapshots = self._snapshots(capture)
        info = store.save(snapshots, meta={"position": 2_000, "epoch": 1})
        latest = store.latest()
        assert latest is not None and latest.seq == info.seq
        assert latest.meta["position"] == 2_000
        assert latest.num_shards == 2
        loaded = store.load(latest)
        assert [to_bytes(s) for s in loaded] == [to_bytes(s) for s in snapshots]
        # No .tmp litter after a completed save.
        assert not [n for n in os.listdir(tmp_path / "ck") if ".tmp" in n]

    def test_prunes_to_retention(self, capture, tmp_path):
        store = CheckpointStore(tmp_path / "ck", keep=2)
        snapshots = self._snapshots(capture)
        for position in (100, 200, 300, 400):
            store.save(snapshots, meta={"position": position})
        infos = store.list()
        assert [info.meta["position"] for info in infos] == [300, 400]
        names = os.listdir(tmp_path / "ck")
        assert len([n for n in names if n.endswith(".json")]) == 2

    def test_latest_skips_corrupt_manifest(self, capture, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        snapshots = self._snapshots(capture)
        good = store.save(snapshots, meta={"position": 1})
        bad = store.save(snapshots, meta={"position": 2})
        with open(bad.manifest_path, "w") as handle:
            handle.write("{ not json")
        assert store.latest().seq == good.seq

    def test_latest_skips_missing_shard_files(self, capture, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        snapshots = self._snapshots(capture)
        good = store.save(snapshots, meta={"position": 1})
        bad = store.save(snapshots, meta={"position": 2})
        os.remove(bad.shard_paths[0])
        assert store.latest().seq == good.seq

    def test_empty_directory_has_no_latest(self, tmp_path):
        assert CheckpointStore(tmp_path / "ck").latest() is None

    def test_rejects_bad_parameters(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointStore(tmp_path / "ck", keep=0)
        with pytest.raises(ConfigurationError):
            CheckpointStore(tmp_path / "ck").save([])


class TestMeasurementDaemon:
    def test_rejects_bounded_sources(self, trace):
        from repro.pipeline import TraceChunkSource

        with pytest.raises(ConfigurationError):
            MeasurementDaemon(TraceChunkSource(trace, chunk_size=100))

    def test_matches_manual_pipeline(self, trace, capture, tmp_path):
        reference = ShardedStreamingMeasurer(_config(), num_shards=2)
        source = _source(capture)
        pipeline = Pipeline(reference, rotate=True)
        pipeline.begin(source)
        for chunk in source:
            pipeline.step(chunk)
        result = pipeline.finish()

        daemon = _run_daemon(
            MeasurementDaemon(
                _source(capture),
                config=_config(),
                num_shards=2,
                epoch_seconds=1.0,
                checkpoint_dir=str(tmp_path / "ck"),
                checkpoint_every=3,
            )
        )
        assert daemon.error is None
        assert daemon.packets == result.packets == trace.num_packets
        assert daemon.measurer.estimates() == reference.estimates()
        assert _shard_bytes(daemon.measurer) == _shard_bytes(reference)

    def test_crash_recovery_is_bit_identical(self, trace, capture, tmp_path):
        """Satellite: kill mid-stream between checkpoints, restart,
        finish — state equals a run that never died."""
        reference = _run_daemon(
            MeasurementDaemon(
                _source(capture), config=_config(), num_shards=2,
                epoch_seconds=1.0,
            )
        )
        assert reference.error is None

        class Dying(PacketRecordChunkSource):
            def __iter__(self):
                for i, chunk in enumerate(super().__iter__()):
                    if i == 5:  # between the every-2-chunks checkpoints
                        raise RuntimeError("simulated crash")
                    yield chunk

        ck = str(tmp_path / "ck")
        crashed = _run_daemon(
            MeasurementDaemon(
                Dying(capture, chunk_size=1_000, epoch_seconds=1.0),
                config=_config(),
                num_shards=2,
                epoch_seconds=1.0,
                checkpoint_dir=ck,
                checkpoint_every=2,
            )
        )
        assert isinstance(crashed.error, RuntimeError)
        # The crash wrote no final checkpoint: on-disk state is the last
        # *periodic* one, strictly before the crash point.
        last = crashed.store.latest()
        assert 0 < last.meta["position"] < crashed._position

        recovered = _run_daemon(
            MeasurementDaemon(
                _source(capture),
                num_shards=2,
                epoch_seconds=1.0,
                checkpoint_dir=ck,
                checkpoint_every=2,
            )
        )
        assert recovered.error is None
        assert recovered.recovered_from == last.seq
        assert recovered.packets == trace.num_packets
        assert recovered.measurer.estimates() == reference.measurer.estimates()
        assert _shard_bytes(recovered.measurer) == _shard_bytes(
            reference.measurer
        )

    def test_recovery_restores_config_from_checkpoint(
        self, capture, tmp_path
    ):
        ck = str(tmp_path / "ck")
        first = _run_daemon(
            MeasurementDaemon(
                _source(capture), config=_config(), epoch_seconds=1.0,
                checkpoint_dir=ck, checkpoint_every=2, max_packets=3_000,
            )
        )
        assert first.error is None
        # Restart with *no* config: it must come back from the manifest.
        second = MeasurementDaemon(
            _source(capture), epoch_seconds=1.0, checkpoint_dir=ck,
        )
        second.start()
        assert second.wait(60.0)
        assert second.config.seed == _config().seed
        assert second.config.l1_memory_bytes == _config().l1_memory_bytes

    def test_max_packets_stops_cleanly_with_final_checkpoint(
        self, capture, tmp_path
    ):
        daemon = _run_daemon(
            MeasurementDaemon(
                _source(capture), config=_config(), epoch_seconds=1.0,
                checkpoint_dir=str(tmp_path / "ck"), checkpoint_every=100,
                max_packets=2_500,
            )
        )
        assert daemon.error is None
        assert daemon.packets >= 2_500
        # Clean stop commits a final checkpoint at the stop position.
        assert daemon.store.latest().meta["position"] == daemon._position

    def test_throughput_comparable_to_batch(self, trace, capture):
        """Acceptance: live service pps within 2x of the batch loop."""
        batch = Pipeline(ShardedStreamingMeasurer(_config())).run(
            _source(capture, epoch_seconds=None)
        )
        daemon = _run_daemon(
            MeasurementDaemon(
                _source(capture, epoch_seconds=None), config=_config()
            )
        )
        assert daemon.error is None
        stats = daemon.stats()
        assert stats["pps_total"] >= 0.5 * batch.pps

    def test_stats_and_queries(self, trace, capture):
        daemon = _run_daemon(
            MeasurementDaemon(
                _source(capture), config=_config(), epoch_seconds=1.0
            )
        )
        stats = daemon.stats()
        assert stats["packets"] == trace.num_packets
        assert stats["running"] is False
        assert stats["error"] is None
        assert stats["wsaf_entries"] == daemon.measurer.wsaf_size > 0
        table = daemon.measurer.estimates()
        top = daemon.top(3)
        assert len(top) == 3
        assert top[0][1] == max(est[0] for est in table.values())
        key = top[0][0]
        assert daemon.query(key) == table[key]
        assert daemon.query(0xDEAD_BEEF_0000) is None


class TestControlServer:
    @pytest.fixture()
    def served(self, capture):
        daemon = _run_daemon(
            MeasurementDaemon(
                _source(capture), config=_config(), epoch_seconds=1.0
            )
        )
        with ControlServer(daemon) as server:
            yield daemon, server.address

    def test_ping(self, served):
        _daemon, address = served
        assert send_command(address, "ping") == (True, "pong")

    def test_stats(self, served, trace):
        daemon, address = served
        ok, stats = send_command(address, "stats")
        assert ok and stats["packets"] == trace.num_packets

    def test_query_and_top(self, served):
        daemon, address = served
        ok, top = send_command(address, "top 2")
        assert ok and len(top) == 2
        key = top[0][0]
        ok, reply = send_command(address, f"query {key}")
        assert ok and reply["key"] == key
        assert reply["packets"] == pytest.approx(top[0][1])
        ok, miss = send_command(address, "query 1")
        assert ok and miss["packets"] is None

    def test_rotate(self, served):
        _daemon, address = served
        ok, reply = send_command(address, "rotate")
        assert ok and reply["expired"] >= 0

    def test_errors_are_reported_in_band(self, served):
        _daemon, address = served
        ok, message = send_command(address, "frobnicate")
        assert not ok and "frobnicate" in message
        ok, _message = send_command(address, "query")
        assert not ok
        # snapshot without a checkpoint dir is an in-band error too
        ok, message = send_command(address, "snapshot")
        assert not ok and "checkpoint" in message

    def test_snapshot_with_store(self, capture, tmp_path):
        daemon = _run_daemon(
            MeasurementDaemon(
                _source(capture), config=_config(), epoch_seconds=1.0,
                checkpoint_dir=str(tmp_path / "ck"), checkpoint_every=10_000,
            )
        )
        with ControlServer(daemon) as server:
            ok, reply = send_command(server.address, "snapshot")
        assert ok and os.path.exists(reply["path"])


class TestServeCLI:
    """End-to-end over the real executable: serve, hard-kill, recover."""

    def _run(self, *argv, **kwargs):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            env=env, capture_output=True, text=True, timeout=120, **kwargs,
        )

    @staticmethod
    def _summary(stdout: str) -> "tuple[str, str]":
        """(packets, wsaf flows) off the final ``served ...`` line —
        the run-invariant parts (pps is wall-clock noise)."""
        line = stdout.strip().splitlines()[-1]
        assert line.startswith("served "), line
        words = line.split()
        return words[1], words[-3]

    def test_serve_batch_and_kill_recover(self, capture, tmp_path):
        ck = str(tmp_path / "ck")
        serve_args = [
            "serve", capture, "--epoch-seconds", "1", "--chunk-size", "500",
            "--checkpoint-dir", ck, "--checkpoint-every", "2",
            "--l1-kb", "2", "--wsaf-bits", "11",
        ]
        # Uninterrupted pass: the baseline summary line.
        clean = self._run(*serve_args)
        assert clean.returncode == 0, clean.stderr
        baseline = self._summary(clean.stdout)

        # Fresh directory, kill a follow-mode server mid-stream.
        ck2 = str(tmp_path / "ck2")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(__file__), "..", "src"
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", capture, "--follow",
                "--epoch-seconds", "1", "--chunk-size", "500",
                "--checkpoint-dir", ck2, "--checkpoint-every", "2",
                "--control-port", "0", "--l1-kb", "2", "--wsaf-bits", "11",
            ],
            env=env, stdout=subprocess.PIPE, text=True,
        )
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("control "), line
            host, _, port = line.split()[1].partition(":")
            deadline = time.monotonic() + 60.0
            packets = 0
            while time.monotonic() < deadline:
                ok, stats = send_command((host, int(port)), "stats")
                assert ok, stats
                packets = stats["packets"]
                if packets and any(
                    name.endswith(".json") for name in os.listdir(ck2)
                ):
                    break
                time.sleep(0.1)
            assert packets > 0
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        # Recover without --follow: drains the capture to the end and
        # lands on the same packet count and WSAF occupancy as the
        # uninterrupted pass (pps is wall-clock and may differ).
        recover_args = [
            arg if arg != ck else ck2 for arg in serve_args
        ]
        recovered = self._run(*recover_args)
        assert recovered.returncode == 0, recovered.stderr
        assert "recovered from checkpoint" in recovered.stdout
        assert self._summary(recovered.stdout) == baseline

    def test_control_cli_round_trip(self, capture, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(__file__), "..", "src"
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", capture, "--follow",
                "--chunk-size", "500", "--control-port", "0",
                "--l1-kb", "2", "--wsaf-bits", "11",
            ],
            env=env, stdout=subprocess.PIPE, text=True,
        )
        try:
            line = proc.stdout.readline().strip()
            address = line.split()[1]
            out = self._run("control", address, "ping")
            assert out.returncode == 0 and json.loads(out.stdout) == "pong"
            out = self._run("control", address, "stats")
            assert out.returncode == 0
            assert "packets" in json.loads(out.stdout)
            out = self._run("control", address, "stop")
            assert out.returncode == 0
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
