"""Process-sharded ingestion and chunk prefetching.

The headline contract: a :class:`ShardedPipeline` run at any shard count
produces estimates **exactly equal** to a single-process pipeline over
the same trace — for both WSAF backing stores, in-process and forked —
because word-range sharding keeps regulator words, positioned random
bits, and per-flow accumulation order all identical to the single run
(valid while the WSAF sees no evictions, which these workloads satisfy
and the tests assert).

:class:`PrefetchChunkSource` is the opposite kind of wrapper: it changes
*when* chunks are produced, never *what* — the tests pin the identical
chunk sequence, error propagation, and re-iterability.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InstaMeasure, InstaMeasureConfig
from repro.errors import ConfigurationError
from repro.pipeline import (
    ChunkSource,
    PrefetchChunkSource,
    ShardedPipeline,
    TraceChunkSource,
    run_sharded,
)
from repro.pipeline.sharded import _fork_available
from repro.state import ShardRouter
from repro.traffic import CaidaLikeConfig, build_caida_like_trace


@pytest.fixture(scope="module")
def trace():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=2_000, duration=8.0, seed=11)
    )


def _config(wsaf_engine: str = "auto", **overrides) -> InstaMeasureConfig:
    base = dict(
        l1_memory_bytes=4 * 1024,
        wsaf_entries=1 << 12,
        seed=3,
        wsaf_engine=wsaf_engine,
    )
    base.update(overrides)
    return InstaMeasureConfig(**base)


def _single_run(config, trace) -> InstaMeasure:
    engine = InstaMeasure(config)
    engine.process_trace(trace)
    return engine


class TestShardRouter:
    def test_bounds_partition_the_word_space(self):
        router = ShardRouter.for_config(_config(), 4)
        assert router.bounds[0] == 0
        assert router.bounds[-1] == router.num_words
        assert (np.diff(router.bounds) > 0).all()

    def test_every_key_lands_in_exactly_one_shard(self, trace):
        router = ShardRouter.for_config(_config(), 4)
        shards = router.shard_of_keys(trace.flows.key64)
        assert shards.min() >= 0 and shards.max() < 4
        # The ranges tile: each key's placement word is inside its
        # shard's [lo, hi) range.
        for shard in range(4):
            lo, hi = router.key_range(shard)
            words = router._place(trace.flows.key64[shards == shard])
            assert (words >= lo).all() and (words < hi).all()

    def test_assignments_follow_flow_ids(self, trace):
        router = ShardRouter.for_config(_config(), 3)
        per_packet = router.assignments(trace)
        per_flow = router.shard_of_keys(trace.flows.key64)
        assert np.array_equal(per_packet, per_flow[trace.flow_ids])

    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardRouter.for_config(_config(), 0)
        with pytest.raises(ConfigurationError):
            ShardRouter(10, 5, lambda keys: keys)
        router = ShardRouter.for_config(_config(), 2)
        with pytest.raises(ConfigurationError):
            router.key_range(2)


class TestShardedEquivalence:
    @pytest.mark.parametrize("wsaf_engine", ["scalar", "batched"])
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
    def test_sharded_equals_single_process(self, trace, wsaf_engine, num_shards):
        config = _config(wsaf_engine)
        single = _single_run(config, trace)
        # The exactness argument requires an eviction-free single run.
        assert single.wsaf.evictions == 0 and single.wsaf.gc_reclaimed == 0

        result = ShardedPipeline(config, num_shards=num_shards).run(trace)

        assert result.estimates() == single.estimates()
        assert result.packets == trace.num_packets
        assert result.snapshot.wsaf.evictions == 0
        assert result.snapshot.shards_merged == num_shards
        # Regulator word arrays are bit-identical, not just estimates.
        from repro.state import capture_engine

        reference = capture_engine(single)
        for ours, theirs in zip(
            result.snapshot.regulator.sketches, reference.regulator.sketches
        ):
            assert np.array_equal(ours.words, theirs.words)
        assert (
            result.snapshot.regulator.insertions
            == reference.regulator.insertions
        )

    def test_sharded_counters_match_single_run(self, trace):
        config = _config("scalar")
        single = _single_run(config, trace)
        result = ShardedPipeline(config, num_shards=4).run(trace)
        assert result.snapshot.wsaf.insertions == single.wsaf.insertions
        assert result.snapshot.wsaf.updates == single.wsaf.updates
        assert result.snapshot.regulator.packets == trace.num_packets

    @pytest.mark.skipif(not _fork_available(), reason="platform cannot fork")
    def test_fork_parallel_equals_in_process(self, trace):
        config = _config("batched")
        in_process = ShardedPipeline(config, num_shards=4).run(trace)
        forked = ShardedPipeline(config, num_shards=4, parallel=True).run(trace)
        assert forked.estimates() == in_process.estimates()
        assert forked.shard_packets == in_process.shard_packets

    def test_restored_merged_state_is_live(self, trace):
        config = _config("scalar")
        result = ShardedPipeline(config, num_shards=4).run(trace)
        engine = result.restore()
        assert engine.estimates() == result.estimates()
        # and it keeps measuring:
        engine.process_trace(trace)
        assert engine.regulator.stats.packets == 2 * trace.num_packets

    def test_empty_shards_merge_cleanly(self):
        # 3 flows across 8 shards: most shards receive nothing.
        tiny = build_caida_like_trace(
            CaidaLikeConfig(num_flows=3, duration=1.0, seed=2)
        )
        config = _config("scalar")
        single = _single_run(config, tiny)
        result = ShardedPipeline(config, num_shards=8).run(tiny)
        assert result.estimates() == single.estimates()
        assert sum(result.shard_packets) == tiny.num_packets

    def test_chunked_workers_preserve_equivalence(self, trace):
        """Tiny per-worker chunks exercise positioned multi-chunk streams."""
        config = _config("scalar")
        single = _single_run(config, trace)
        result = ShardedPipeline(config, num_shards=3, chunk_size=700).run(trace)
        assert result.estimates() == single.estimates()


class TestShardedPipelineAPI:
    def test_accepts_trace_backed_sources(self, trace):
        config = _config("scalar")
        from_trace = ShardedPipeline(config, num_shards=2).run(trace)
        from_source = ShardedPipeline(config, num_shards=2).run(
            TraceChunkSource(trace, chunk_size=4_000)
        )
        assert from_trace.estimates() == from_source.estimates()

    def test_accepts_unknown_length_sources(self, trace):
        # An unbounded source (the service mode's shape) shards too:
        # per-shard block-drawn randomness instead of the positioned
        # global draw.  Packets must be conserved and the key sets of the
        # merged estimates must cover exactly the trace's flows.
        inner = TraceChunkSource(trace, chunk_size=3_000)

        class Unbounded(ChunkSource):
            total_packets = None
            epoch_seconds = None
            start_time = None

            def __iter__(self):
                return iter(inner)

        config = _config("scalar")
        result = ShardedPipeline(config, num_shards=3).run(Unbounded())
        assert sum(result.shard_packets) == trace.num_packets
        keys = set(trace.flows.key64.tolist())
        assert set(result.estimates()).issubset(keys)

    def test_accepts_opaque_sources_with_known_total(self, trace):
        # A chunk source that is NOT a TraceChunkSource (so nothing can
        # peek at a whole backing trace) still shard-streams exactly, as
        # long as it reports its total.
        inner = TraceChunkSource(trace, chunk_size=3_000)

        class Relay(ChunkSource):
            total_packets = trace.num_packets
            epoch_seconds = None
            start_time = None

            def __iter__(self):
                return iter(inner)

        config = _config("scalar")
        result = ShardedPipeline(config, num_shards=3).run(Relay())
        assert result.estimates() == _single_run(config, trace).estimates()

    def test_streams_from_file_source(self, trace, tmp_path):
        """Sharded runs consume FileChunkSource chunk by chunk."""
        from repro.pipeline import FileChunkSource
        from repro.traffic import save_trace

        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        config = _config("batched")
        single = _single_run(config, trace)
        result = ShardedPipeline(config, num_shards=4).run(
            FileChunkSource(path, chunk_size=4_000)
        )
        assert result.estimates() == single.estimates()
        if _fork_available():
            forked = ShardedPipeline(config, num_shards=4, parallel=True).run(
                FileChunkSource(path, chunk_size=4_000)
            )
            assert forked.estimates() == single.estimates()

    def test_stage_seconds_breakdown(self, trace):
        result = ShardedPipeline(_config(), num_shards=2).run(trace)
        assert set(result.stage_seconds) == {
            "route_s",
            "ipc_s",
            "ingest_s",
            "merge_s",
        }
        assert result.elapsed_seconds > 0
        assert result.stage_seconds["ipc_s"] == 0.0  # in-process run

    def test_fork_unavailable_falls_back_with_warning(self, trace, monkeypatch):
        import repro.pipeline.sharded as sharded_module

        monkeypatch.setattr(sharded_module, "_fork_available", lambda: False)
        config = _config("scalar")
        with pytest.warns(RuntimeWarning, match="fork start method"):
            result = ShardedPipeline(config, num_shards=2, parallel=True).run(
                trace
            )
        assert not result.parallel
        assert result.estimates() == _single_run(config, trace).estimates()

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            ShardedPipeline(_config(), num_shards=0)

    def test_run_sharded_convenience(self, trace):
        config = _config("scalar")
        result = run_sharded(config, trace, num_shards=2)
        assert result.estimates() == _single_run(config, trace).estimates()

    def test_load_shares_sum_to_one(self, trace):
        result = ShardedPipeline(_config(), num_shards=4).run(trace)
        assert result.packets == trace.num_packets
        assert sum(result.load_shares) == pytest.approx(1.0)

    def test_estimates_for_alignment(self, trace):
        config = _config("scalar")
        result = ShardedPipeline(config, num_shards=2).run(trace)
        single = _single_run(config, trace)
        got_packets, got_bytes = result.estimates_for(trace)
        want_packets, want_bytes = single.estimates_for(trace)
        assert np.array_equal(got_packets, want_packets)
        assert np.array_equal(got_bytes, want_bytes)


class TestStreamingEdges:
    def test_one_packet_chunks(self):
        """chunk_size=1 — every routed sub-chunk is one packet or empty."""
        tiny = build_caida_like_trace(
            CaidaLikeConfig(num_flows=20, duration=0.3, seed=7)
        )
        config = _config("scalar")
        single = _single_run(config, tiny)
        result = ShardedPipeline(config, num_shards=3, chunk_size=1).run(tiny)
        assert result.estimates() == single.estimates()
        assert result.packets == tiny.num_packets

    def test_positional_midstream_capture_rejected(self, trace):
        """After take_at gathers, the cursor is meaningless — capture raises."""
        from repro.errors import SnapshotError
        from repro.state import capture_engine
        from repro.traffic.packet import Trace

        engine = InstaMeasure(_config("scalar"))
        engine.begin_stream(total=trace.num_packets)
        sub = Trace(
            timestamps=trace.timestamps[:10],
            flow_ids=trace.flow_ids[:10],
            sizes=trace.sizes[:10],
            flows=trace.flows,
        )
        engine.ingest(sub, positions=np.arange(10, dtype=np.int64))
        with pytest.raises(SnapshotError, match="positional"):
            capture_engine(engine)
        engine.finalize()  # and finalizing afterwards is fine


@pytest.mark.skipif(not _fork_available(), reason="platform cannot fork")
class TestShardWorkerPool:
    """Failure handling of the persistent worker pool: raise, never hang."""

    def _pool(self, total=100):
        from repro.pipeline import ShardWorkerPool

        config = _config("scalar")
        router = ShardRouter.for_config(config, 1)
        return ShardWorkerPool(config, [router.key_range(0)], total)

    def _chunk_frame(self, positions):
        from repro.state import pack_frame

        count = len(positions)
        return pack_frame(
            {"type": "chunk"},
            {
                "timestamps": np.linspace(0.0, 1.0, count),
                "flow_ids": np.zeros(count, dtype=np.int64),
                "sizes": np.full(count, 100, dtype=np.int64),
                "positions": np.asarray(positions, dtype=np.int64),
                "new_key64": np.array([12345], dtype=np.uint64),
                "new_tuple_lo": np.array([1], dtype=np.uint64),
                "new_tuple_hi": np.array([2], dtype=np.uint64),
            },
        )

    def test_worker_exception_propagates(self):
        from repro.errors import ShardWorkerError

        pool = self._pool(total=100)
        try:
            # Positions beyond the declared total make the worker's
            # engine raise mid-chunk; the error frame must surface as a
            # ShardWorkerError (carrying the worker traceback), not hang.
            pool.send(0, self._chunk_frame([999]))
            with pytest.raises(ShardWorkerError, match="shard worker 0"):
                pool.finalize()
        finally:
            pool.close()

    def test_worker_death_propagates(self):
        import os
        import signal

        from repro.errors import ShardWorkerError

        pool = self._pool(total=100)
        try:
            victim = pool._procs[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5.0)
            with pytest.raises(ShardWorkerError):
                pool.send(0, self._chunk_frame([0, 1, 2]))
                pool.finalize()
        finally:
            pool.close()

    def test_healthy_pool_round_trips(self):
        pool = self._pool(total=3)
        try:
            pool.send(0, self._chunk_frame([0, 1, 2]))
            replies = pool.finalize()
        finally:
            pool.close()
        assert len(replies) == 1
        meta, payload = replies[0]
        assert meta["packets"] == 3
        from repro.state import from_bytes

        snapshot = from_bytes(payload)
        assert snapshot.regulator.packets == 3


class TestPrefetchChunkSource:
    def test_identical_chunk_sequence(self, trace):
        inner = TraceChunkSource(trace, chunk_size=1_000)
        prefetched = PrefetchChunkSource(inner, depth=3)
        assert list(prefetched) == list(inner)
        assert prefetched.total_packets == inner.total_packets
        assert prefetched.start_time == inner.start_time

    def test_pipeline_results_are_bit_identical(self, trace):
        config = _config("scalar")
        direct = InstaMeasure(config)
        from repro.pipeline import Pipeline

        Pipeline(direct).run(TraceChunkSource(trace, chunk_size=1_000))
        staged = InstaMeasure(config)
        Pipeline(staged).run(
            PrefetchChunkSource(TraceChunkSource(trace, chunk_size=1_000))
        )
        assert staged.estimates() == direct.estimates()

    def test_reiterable(self, trace):
        prefetched = PrefetchChunkSource(
            TraceChunkSource(trace, chunk_size=2_000)
        )
        assert list(prefetched) == list(prefetched)

    def test_producer_errors_propagate(self):
        class Exploding(ChunkSource):
            def __iter__(self):
                raise RuntimeError("disk on fire")
                yield  # pragma: no cover

        with pytest.raises(RuntimeError, match="disk on fire"):
            list(PrefetchChunkSource(Exploding()))

    def test_abandoned_iteration_reaps_producer_thread(self, trace):
        """Breaking out early must not leak a producer blocked on the
        full staging queue (the daemon's stop path)."""
        import threading
        import time

        def prefetch_threads():
            return [
                worker
                for worker in threading.enumerate()
                if worker.name == "chunk-prefetch" and worker.is_alive()
            ]

        prefetched = PrefetchChunkSource(
            TraceChunkSource(trace, chunk_size=100), depth=1
        )
        iterator = iter(prefetched)
        next(iterator)  # the producer is now blocked staging chunk 3
        iterator.close()  # consumer abandons the pass

        deadline = time.monotonic() + 5.0
        while prefetch_threads() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not prefetch_threads()

    def test_validation(self, trace):
        inner = TraceChunkSource(trace, chunk_size=1_000)
        with pytest.raises(ConfigurationError):
            PrefetchChunkSource(inner, depth=0)
        with pytest.raises(ConfigurationError):
            PrefetchChunkSource(object())

    def test_records_queue_stats(self, trace):
        inner = TraceChunkSource(trace, chunk_size=1_000)
        prefetched = PrefetchChunkSource(inner, depth=3)
        assert prefetched.prefetch_stats is None
        chunks = list(prefetched)
        stats = prefetched.prefetch_stats
        assert stats is not None
        assert stats.chunks == len(chunks)
        assert 0 <= stats.max_depth <= 3
        assert stats.producer_wait_s >= 0.0
        assert stats.consumer_wait_s >= 0.0
        # Each pass gets a fresh stats object.
        list(prefetched)
        assert prefetched.prefetch_stats is not stats

    def test_queue_depth_signal_under_slow_consumer(self, trace):
        """The live ``queue_depth`` surface the load controller reads:
        bounded by the configured depth, non-zero while a slow consumer
        lets the producer run ahead, and back to 0 between passes."""
        import time

        prefetched = PrefetchChunkSource(
            TraceChunkSource(trace, chunk_size=500), depth=2
        )
        assert prefetched.queue_depth == 0  # no pass in flight
        observed = []
        for _ in prefetched:
            time.sleep(0.002)  # ingestion is the bottleneck
            observed.append(prefetched.queue_depth)
        assert len(observed) > 5
        assert all(0 <= depth <= 2 for depth in observed)
        assert max(observed) >= 1
        assert prefetched.queue_depth == 0  # pass over, surface resets
        # Consistency with the recorded high-water mark: the producer
        # saw the queue at least as deep as any mid-stream reading,
        # minus the end-of-stream sentinel a reading may include.
        stats = prefetched.prefetch_stats
        assert stats.max_depth >= max(observed) - 1
        assert stats.max_depth <= 2

    def test_slow_consumer_records_producer_waits(self, trace):
        """With depth=1 and a dawdling consumer, the producer must block
        on the full queue and the pass must account for that time."""
        import time

        prefetched = PrefetchChunkSource(
            TraceChunkSource(trace, chunk_size=500), depth=1
        )
        for _ in prefetched:
            time.sleep(0.002)
        stats = prefetched.prefetch_stats
        assert stats.producer_wait_s > 0.0
        assert stats.chunks == len(list(TraceChunkSource(trace, chunk_size=500)))

    def test_early_close_joins_producer_with_signal_surface(self, trace):
        """Reading the new load-signal surface mid-pass must not keep an
        abandoned pass's producer alive, and the surface must report 0
        once the pass is torn down."""
        import threading
        import time

        def prefetch_threads():
            return [
                worker
                for worker in threading.enumerate()
                if worker.name == "chunk-prefetch" and worker.is_alive()
            ]

        prefetched = PrefetchChunkSource(
            TraceChunkSource(trace, chunk_size=100), depth=1
        )
        iterator = iter(prefetched)
        next(iterator)  # the producer is now blocked staging chunk 3
        assert prefetched.queue_depth >= 0  # live queue, readable
        iterator.close()  # consumer abandons the pass

        deadline = time.monotonic() + 5.0
        while prefetch_threads() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not prefetch_threads()
        assert prefetched.queue_depth == 0

    def test_offered_pps_delegates_to_source(self, trace):
        inner = TraceChunkSource(trace, chunk_size=1_000)
        prefetched = PrefetchChunkSource(inner, depth=2)
        assert prefetched.offered_pps == inner.offered_pps
        assert prefetched.offered_pps == pytest.approx(
            trace.num_packets / trace.duration, rel=0.01
        )

    def test_pipeline_surfaces_prefetch_stats(self, trace):
        from repro.pipeline import Pipeline

        config = _config("scalar")
        prefetched = PrefetchChunkSource(
            TraceChunkSource(trace, chunk_size=1_000)
        )
        outcome = Pipeline(InstaMeasure(config)).run(prefetched)
        assert outcome.prefetch_stats is not None
        assert outcome.prefetch_stats.chunks == len(outcome.chunks)
        # A direct source reports no prefetch stats.
        plain = Pipeline(InstaMeasure(config)).run(
            TraceChunkSource(trace, chunk_size=1_000)
        )
        assert plain.prefetch_stats is None
