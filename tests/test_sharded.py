"""Process-sharded ingestion and chunk prefetching.

The headline contract: a :class:`ShardedPipeline` run at any shard count
produces estimates **exactly equal** to a single-process pipeline over
the same trace — for both WSAF backing stores, in-process and forked —
because word-range sharding keeps regulator words, positioned random
bits, and per-flow accumulation order all identical to the single run
(valid while the WSAF sees no evictions, which these workloads satisfy
and the tests assert).

:class:`PrefetchChunkSource` is the opposite kind of wrapper: it changes
*when* chunks are produced, never *what* — the tests pin the identical
chunk sequence, error propagation, and re-iterability.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InstaMeasure, InstaMeasureConfig
from repro.errors import ConfigurationError
from repro.pipeline import (
    ChunkSource,
    PrefetchChunkSource,
    ShardedPipeline,
    TraceChunkSource,
    run_sharded,
)
from repro.pipeline.sharded import _fork_available
from repro.state import ShardRouter
from repro.traffic import CaidaLikeConfig, build_caida_like_trace


@pytest.fixture(scope="module")
def trace():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=2_000, duration=8.0, seed=11)
    )


def _config(wsaf_engine: str = "auto", **overrides) -> InstaMeasureConfig:
    base = dict(
        l1_memory_bytes=4 * 1024,
        wsaf_entries=1 << 12,
        seed=3,
        wsaf_engine=wsaf_engine,
    )
    base.update(overrides)
    return InstaMeasureConfig(**base)


def _single_run(config, trace) -> InstaMeasure:
    engine = InstaMeasure(config)
    engine.process_trace(trace)
    return engine


class TestShardRouter:
    def test_bounds_partition_the_word_space(self):
        router = ShardRouter.for_config(_config(), 4)
        assert router.bounds[0] == 0
        assert router.bounds[-1] == router.num_words
        assert (np.diff(router.bounds) > 0).all()

    def test_every_key_lands_in_exactly_one_shard(self, trace):
        router = ShardRouter.for_config(_config(), 4)
        shards = router.shard_of_keys(trace.flows.key64)
        assert shards.min() >= 0 and shards.max() < 4
        # The ranges tile: each key's placement word is inside its
        # shard's [lo, hi) range.
        for shard in range(4):
            lo, hi = router.key_range(shard)
            words = router._place(trace.flows.key64[shards == shard])
            assert (words >= lo).all() and (words < hi).all()

    def test_assignments_follow_flow_ids(self, trace):
        router = ShardRouter.for_config(_config(), 3)
        per_packet = router.assignments(trace)
        per_flow = router.shard_of_keys(trace.flows.key64)
        assert np.array_equal(per_packet, per_flow[trace.flow_ids])

    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardRouter.for_config(_config(), 0)
        with pytest.raises(ConfigurationError):
            ShardRouter(10, 5, lambda keys: keys)
        router = ShardRouter.for_config(_config(), 2)
        with pytest.raises(ConfigurationError):
            router.key_range(2)


class TestShardedEquivalence:
    @pytest.mark.parametrize("wsaf_engine", ["scalar", "batched"])
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
    def test_sharded_equals_single_process(self, trace, wsaf_engine, num_shards):
        config = _config(wsaf_engine)
        single = _single_run(config, trace)
        # The exactness argument requires an eviction-free single run.
        assert single.wsaf.evictions == 0 and single.wsaf.gc_reclaimed == 0

        result = ShardedPipeline(config, num_shards=num_shards).run(trace)

        assert result.estimates() == single.estimates()
        assert result.packets == trace.num_packets
        assert result.snapshot.wsaf.evictions == 0
        assert result.snapshot.shards_merged == num_shards
        # Regulator word arrays are bit-identical, not just estimates.
        from repro.state import capture_engine

        reference = capture_engine(single)
        for ours, theirs in zip(
            result.snapshot.regulator.sketches, reference.regulator.sketches
        ):
            assert np.array_equal(ours.words, theirs.words)
        assert (
            result.snapshot.regulator.insertions
            == reference.regulator.insertions
        )

    def test_sharded_counters_match_single_run(self, trace):
        config = _config("scalar")
        single = _single_run(config, trace)
        result = ShardedPipeline(config, num_shards=4).run(trace)
        assert result.snapshot.wsaf.insertions == single.wsaf.insertions
        assert result.snapshot.wsaf.updates == single.wsaf.updates
        assert result.snapshot.regulator.packets == trace.num_packets

    @pytest.mark.skipif(not _fork_available(), reason="platform cannot fork")
    def test_fork_parallel_equals_in_process(self, trace):
        config = _config("batched")
        in_process = ShardedPipeline(config, num_shards=4).run(trace)
        forked = ShardedPipeline(config, num_shards=4, parallel=True).run(trace)
        assert forked.estimates() == in_process.estimates()
        assert forked.shard_packets == in_process.shard_packets

    def test_restored_merged_state_is_live(self, trace):
        config = _config("scalar")
        result = ShardedPipeline(config, num_shards=4).run(trace)
        engine = result.restore()
        assert engine.estimates() == result.estimates()
        # and it keeps measuring:
        engine.process_trace(trace)
        assert engine.regulator.stats.packets == 2 * trace.num_packets

    def test_empty_shards_merge_cleanly(self):
        # 3 flows across 8 shards: most shards receive nothing.
        tiny = build_caida_like_trace(
            CaidaLikeConfig(num_flows=3, duration=1.0, seed=2)
        )
        config = _config("scalar")
        single = _single_run(config, tiny)
        result = ShardedPipeline(config, num_shards=8).run(tiny)
        assert result.estimates() == single.estimates()
        assert sum(result.shard_packets) == tiny.num_packets

    def test_chunked_workers_preserve_equivalence(self, trace):
        """Tiny per-worker chunks exercise positioned multi-chunk streams."""
        config = _config("scalar")
        single = _single_run(config, trace)
        result = ShardedPipeline(config, num_shards=3, chunk_size=700).run(trace)
        assert result.estimates() == single.estimates()


class TestShardedPipelineAPI:
    def test_accepts_trace_backed_sources(self, trace):
        config = _config("scalar")
        from_trace = ShardedPipeline(config, num_shards=2).run(trace)
        from_source = ShardedPipeline(config, num_shards=2).run(
            TraceChunkSource(trace, chunk_size=4_000)
        )
        assert from_trace.estimates() == from_source.estimates()

    def test_rejects_traceless_sources(self, trace):
        class Opaque(ChunkSource):
            def __iter__(self):
                return iter(())

        with pytest.raises(ConfigurationError, match="trace-backed"):
            ShardedPipeline(_config(), num_shards=2).run(Opaque())

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            ShardedPipeline(_config(), num_shards=0)

    def test_run_sharded_convenience(self, trace):
        config = _config("scalar")
        result = run_sharded(config, trace, num_shards=2)
        assert result.estimates() == _single_run(config, trace).estimates()

    def test_load_shares_sum_to_one(self, trace):
        result = ShardedPipeline(_config(), num_shards=4).run(trace)
        assert result.packets == trace.num_packets
        assert sum(result.load_shares) == pytest.approx(1.0)

    def test_estimates_for_alignment(self, trace):
        config = _config("scalar")
        result = ShardedPipeline(config, num_shards=2).run(trace)
        single = _single_run(config, trace)
        got_packets, got_bytes = result.estimates_for(trace)
        want_packets, want_bytes = single.estimates_for(trace)
        assert np.array_equal(got_packets, want_packets)
        assert np.array_equal(got_bytes, want_bytes)


class TestPrefetchChunkSource:
    def test_identical_chunk_sequence(self, trace):
        inner = TraceChunkSource(trace, chunk_size=1_000)
        prefetched = PrefetchChunkSource(inner, depth=3)
        assert list(prefetched) == list(inner)
        assert prefetched.total_packets == inner.total_packets
        assert prefetched.start_time == inner.start_time

    def test_pipeline_results_are_bit_identical(self, trace):
        config = _config("scalar")
        direct = InstaMeasure(config)
        from repro.pipeline import Pipeline

        Pipeline(direct).run(TraceChunkSource(trace, chunk_size=1_000))
        staged = InstaMeasure(config)
        Pipeline(staged).run(
            PrefetchChunkSource(TraceChunkSource(trace, chunk_size=1_000))
        )
        assert staged.estimates() == direct.estimates()

    def test_reiterable(self, trace):
        prefetched = PrefetchChunkSource(
            TraceChunkSource(trace, chunk_size=2_000)
        )
        assert list(prefetched) == list(prefetched)

    def test_producer_errors_propagate(self):
        class Exploding(ChunkSource):
            def __iter__(self):
                raise RuntimeError("disk on fire")
                yield  # pragma: no cover

        with pytest.raises(RuntimeError, match="disk on fire"):
            list(PrefetchChunkSource(Exploding()))

    def test_validation(self, trace):
        inner = TraceChunkSource(trace, chunk_size=1_000)
        with pytest.raises(ConfigurationError):
            PrefetchChunkSource(inner, depth=0)
        with pytest.raises(ConfigurationError):
            PrefetchChunkSource(object())
