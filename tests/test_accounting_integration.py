"""Tests for memory-access accounting through the full engine.

The paper's whole design argument is about *which memory gets touched how
often*; the accountant makes that measurable end-to-end, and these tests
pin the measured access counts against the design's promises.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InstaMeasure, InstaMeasureConfig
from repro.memmodel import DRAM, SRAM, AccessAccountant
from repro.traffic import CaidaLikeConfig, build_caida_like_trace


@pytest.fixture(scope="module")
def trace():
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=2000, duration=6.0, seed=161)
    )


class TestEngineAccounting:
    def _run(self, trace):
        accountant = AccessAccountant(DRAM)
        engine = InstaMeasure(
            InstaMeasureConfig(l1_memory_bytes=2048, wsaf_entries=1 << 12),
            accountant=accountant,
        )
        result = engine.process_trace(trace)
        return accountant, result

    def test_l1_touched_once_per_packet(self, trace):
        accountant, result = self._run(trace)
        by_label = accountant.by_label()
        # One read + one write per packet on L1.
        assert by_label["flowregulator.l1"] == 2 * result.packets

    def test_l2_touched_once_per_l1_saturation(self, trace):
        accountant, result = self._run(trace)
        by_label = accountant.by_label()
        l2_total = sum(
            count for label, count in by_label.items() if "l2" in label
        )
        assert l2_total == 2 * result.regulator_stats.l1_saturations

    def test_wsaf_touched_only_on_insertion(self, trace):
        accountant, result = self._run(trace)
        wsaf_accesses = accountant.by_label().get("wsaf", 0)
        # Probes + write per insertion; bounded by the probe limit + 1.
        assert wsaf_accesses >= result.insertions  # at least one probe each
        assert wsaf_accesses <= result.insertions * 17

    def test_design_claim_wsaf_traffic_is_regulated(self, trace):
        """The headline: WSAF (slow DRAM) sees ~1 % of the packet rate."""
        accountant, result = self._run(trace)
        wsaf_accesses = accountant.by_label().get("wsaf", 0)
        assert wsaf_accesses < 0.1 * result.packets

    def test_per_packet_path_accounts_identically(self, trace):
        """Fast loop and per-packet loop settle the same access totals."""
        fast_accountant, _ = self._run(trace)

        slow_accountant = AccessAccountant(DRAM)
        engine = InstaMeasure(
            InstaMeasureConfig(l1_memory_bytes=2048, wsaf_entries=1 << 12),
            accountant=slow_accountant,
        )
        rng = np.random.default_rng(engine.config.seed ^ 0xB17)
        bits1 = rng.integers(0, 8, size=trace.num_packets, dtype=np.uint8)
        bits2 = rng.integers(0, 8, size=trace.num_packets, dtype=np.uint8)
        keys = trace.flows.key64
        for p in range(trace.num_packets):
            engine.process_packet(
                int(keys[trace.flow_ids[p]]),
                int(trace.sizes[p]),
                float(trace.timestamps[p]),
                bit1=int(bits1[p]),
                bit2=int(bits2[p]),
            )
        assert slow_accountant.by_label() == fast_accountant.by_label()

    def test_modelled_time_uses_technology(self, trace):
        dram_accountant, _ = self._run(trace)
        sram_accountant = AccessAccountant(SRAM)
        sram_accountant.reads = dram_accountant.reads
        sram_accountant.writes = dram_accountant.writes
        assert dram_accountant.modelled_seconds() == pytest.approx(
            SRAM.speed_ratio(DRAM) * sram_accountant.modelled_seconds()
        )
