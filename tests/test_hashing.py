"""Unit and property tests for the hashing substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hashing import (
    MASK64,
    HashFamily,
    TabulationHash,
    hash_bytes,
    hash_u64,
    hash_u64_array,
    mix64,
    mix64_array,
    popcount32,
    splitmix64,
    splitmix64_array,
)

U64 = st.integers(min_value=0, max_value=MASK64)


class TestMixers:
    @given(U64)
    def test_splitmix64_stays_in_64_bits(self, x):
        assert 0 <= splitmix64(x) <= MASK64

    @given(U64)
    def test_mix64_stays_in_64_bits(self, x):
        assert 0 <= mix64(x) <= MASK64

    @given(U64, U64)
    def test_splitmix64_is_injective_on_samples(self, x, y):
        if x != y:
            assert splitmix64(x) != splitmix64(y)

    @given(U64, U64)
    def test_mix64_is_injective_on_samples(self, x, y):
        if x != y:
            assert mix64(x) != mix64(y)

    def test_splitmix64_known_vector(self):
        # First output of the reference splitmix64 stream seeded with 0.
        assert splitmix64(0) == 0xE220A8397B1DCDAF

    @given(U64)
    def test_scalar_and_vector_splitmix_agree(self, x):
        arr = np.array([x], dtype=np.uint64)
        assert int(splitmix64_array(arr)[0]) == splitmix64(x)

    @given(U64)
    def test_scalar_and_vector_mix_agree(self, x):
        arr = np.array([x], dtype=np.uint64)
        assert int(mix64_array(arr)[0]) == mix64(x)

    @given(U64, st.integers(min_value=0, max_value=2**32))
    def test_scalar_and_vector_hash_u64_agree(self, x, seed):
        arr = np.array([x], dtype=np.uint64)
        assert int(hash_u64_array(arr, seed)[0]) == hash_u64(x, seed)

    @given(U64)
    def test_seed_changes_hash(self, x):
        assert hash_u64(x, 1) != hash_u64(x, 2)


class TestHashBytes:
    def test_deterministic(self):
        assert hash_bytes(b"flow") == hash_bytes(b"flow")

    def test_seed_sensitivity(self):
        assert hash_bytes(b"flow", 1) != hash_bytes(b"flow", 2)

    def test_length_sensitivity(self):
        assert hash_bytes(b"") != hash_bytes(b"\x00")

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_collision_free_on_samples(self, a, b):
        if a != b:
            assert hash_bytes(a) != hash_bytes(b)


class TestPopcount32:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_matches_bin_count(self, x):
        assert popcount32(x) == bin(x).count("1")

    def test_masks_to_32_bits(self):
        assert popcount32(1 << 40) == 0
        assert popcount32((1 << 40) | 0b101) == 2


class TestHashFamily:
    def test_rejects_empty_family(self):
        with pytest.raises(ConfigurationError):
            HashFamily(0)

    def test_members_differ(self):
        family = HashFamily(4, seed=3)
        outputs = {family.hash(i, 12345) for i in range(4)}
        assert len(outputs) == 4

    def test_reproducible_across_instances(self):
        a = HashFamily(3, seed=9)
        b = HashFamily(3, seed=9)
        assert all(a.hash(i, 77) == b.hash(i, 77) for i in range(3))

    def test_hash_mod_in_range(self):
        family = HashFamily(2, seed=1)
        for value in range(100):
            assert 0 <= family.hash_mod(1, value, 17) < 17

    def test_uniformity_rough(self):
        family = HashFamily(1, seed=5)
        buckets = np.bincount(
            [family.hash_mod(0, v, 16) for v in range(4096)], minlength=16
        )
        assert buckets.min() > 150  # expectation 256 per bucket


class TestTabulationHash:
    def test_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            TabulationHash(key_bytes=0)

    def test_rejects_oversized_key(self):
        th = TabulationHash(key_bytes=2, seed=0)
        with pytest.raises(ConfigurationError):
            th.hash(1 << 16)

    def test_deterministic(self):
        a = TabulationHash(key_bytes=4, seed=11)
        b = TabulationHash(key_bytes=4, seed=11)
        assert a(0xDEADBEEF) == b(0xDEADBEEF)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_output_is_64_bit(self, key):
        th = TabulationHash(key_bytes=4, seed=2)
        assert 0 <= th(key) <= MASK64

    def test_xor_structure(self):
        # Tabulation hashing of a 1-byte key is exactly a table lookup.
        th = TabulationHash(key_bytes=1, seed=0)
        assert th(5) == int(th._tables[0, 5])
