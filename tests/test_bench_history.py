"""The throughput harness's report-file handling.

A bench run appends to ``BENCH_throughput.json`` and reads baselines out
of it; a missing, unparseable, or wrong-shaped file must never crash a
run mid-bench — it is moved aside to ``.corrupt`` (preserved for
inspection) and the run starts a fresh history.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import _load_bench_module


@pytest.fixture(scope="module")
def bench():
    return _load_bench_module()


@pytest.fixture()
def history_path(bench, tmp_path, monkeypatch):
    path = tmp_path / "BENCH_throughput.json"
    monkeypatch.setattr(bench, "OUTPUT_PATH", path)
    return path


def _row(bench, timestamp: float = 1.0) -> dict:
    return {
        "git_sha": "abc123",
        "engine": "batched",
        "wsaf_engine": "batched",
        "regulator_replay": "scan",
        "timestamp": timestamp,
    }


class TestLoadHistory:
    def test_missing_file_is_empty_history(self, bench, history_path):
        assert bench._load_history() == []
        assert not history_path.exists()

    def test_valid_history_passes_through(self, bench, history_path):
        rows = [_row(bench)]
        history_path.write_text(json.dumps(rows))
        assert bench._load_history() == rows

    def test_unparseable_json_backed_up(self, bench, history_path, capsys):
        history_path.write_text("{not json at all")
        assert bench._load_history() == []
        backup = history_path.with_suffix(".json.corrupt")
        assert backup.read_text() == "{not json at all"
        assert not history_path.exists()
        assert "corrupt" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "payload", ['{"rows": []}', '["just", "strings"]', "42"]
    )
    def test_wrong_shape_backed_up(self, bench, history_path, payload):
        history_path.write_text(payload)
        assert bench._load_history() == []
        assert history_path.with_suffix(".json.corrupt").exists()

    def test_append_after_corruption_starts_fresh(self, bench, history_path):
        history_path.write_text("corrupt!")
        bench._append_report([_row(bench)])
        history = json.loads(history_path.read_text())
        assert [r["git_sha"] for r in history] == ["abc123"]
        assert history_path.with_suffix(".json.corrupt").exists()

    def test_baseline_row_survives_corruption(self, bench, history_path):
        history_path.write_text('["oops"]')
        assert bench._baseline_row("scan") is None

    def test_append_extends_valid_history(self, bench, history_path):
        history_path.write_text(json.dumps([_row(bench, timestamp=1.0)]))
        later = _row(bench, timestamp=2.0)
        later["git_sha"] = "def456"
        bench._append_report([later])
        history = json.loads(history_path.read_text())
        assert {r["git_sha"] for r in history} == {"abc123", "def456"}


class TestShardsNormalization:
    def test_legacy_rows_backfilled_with_one_shard(self, bench, history_path):
        legacy = _row(bench, timestamp=1.0)
        assert "shards" not in legacy
        history_path.write_text(json.dumps([legacy]))
        bench._append_report([])
        history = json.loads(history_path.read_text())
        assert [r["shards"] for r in history] == [1]

    def test_shards_joins_the_row_key(self, bench, history_path):
        # Same (sha, variant) at different shard counts are distinct
        # rows; a re-measurement at the same count supersedes.
        rows = []
        for shards, timestamp in ((1, 1.0), (4, 1.0), (4, 2.0)):
            row = _row(bench, timestamp=timestamp)
            row["shards"] = shards
            rows.append(row)
        history_path.write_text(json.dumps(rows))
        bench._append_report([])
        history = json.loads(history_path.read_text())
        assert sorted(
            (r["shards"], r["timestamp"]) for r in history
        ) == [(1, 1.0), (4, 2.0)]

    def test_legacy_and_explicit_one_shard_dedupe(self, bench, history_path):
        legacy = _row(bench, timestamp=1.0)
        explicit = _row(bench, timestamp=2.0)
        explicit["shards"] = 1
        history_path.write_text(json.dumps([legacy, explicit]))
        bench._append_report([])
        history = json.loads(history_path.read_text())
        assert len(history) == 1
        assert history[0]["timestamp"] == 2.0


class TestEnvironmentStamp:
    def test_legacy_rows_backfilled_with_nulls(self, bench, history_path):
        legacy = _row(bench, timestamp=1.0)
        assert "cpu_count" not in legacy
        history_path.write_text(json.dumps([legacy]))
        bench._append_report([])
        (row,) = json.loads(history_path.read_text())
        assert row["cpu_count"] is None
        assert row["platform"] is None
        assert row["numpy_version"] is None

    def test_stamped_rows_pass_through(self, bench, history_path):
        stamped = _row(bench, timestamp=1.0)
        stamped.update(
            cpu_count=8, platform="Linux-test", numpy_version="1.26.0"
        )
        history_path.write_text(json.dumps([stamped]))
        bench._append_report([])
        (row,) = json.loads(history_path.read_text())
        assert row["cpu_count"] == 8
        assert row["platform"] == "Linux-test"
        assert row["numpy_version"] == "1.26.0"

    def test_environment_has_the_stamp_fields(self, bench):
        environment = bench._environment()
        assert set(environment) == {"cpu_count", "platform", "numpy_version"}
        assert environment["cpu_count"] >= 1
        assert environment["platform"]
        assert environment["numpy_version"]
