"""The bench harnesses' report-file handling.

A bench run appends to its history file (``BENCH_throughput.json``,
``BENCH_overload.json``) and reads baselines out of it; a missing,
unparseable, or wrong-shaped file must never crash a run mid-bench — it
is moved aside to ``.corrupt`` (preserved for inspection) and the run
starts a fresh history.  Legacy rows are backfilled so every row
carries its harness's full key.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

from repro.cli import _load_bench_module


def _load_overload_module():
    path = (
        pathlib.Path(__file__).resolve().parents[1]
        / "benchmarks"
        / "bench_overload.py"
    )
    spec = importlib.util.spec_from_file_location("bench_overload", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def bench():
    return _load_bench_module()


@pytest.fixture()
def history_path(bench, tmp_path, monkeypatch):
    path = tmp_path / "BENCH_throughput.json"
    monkeypatch.setattr(bench, "OUTPUT_PATH", path)
    return path


def _row(bench, timestamp: float = 1.0) -> dict:
    return {
        "git_sha": "abc123",
        "engine": "batched",
        "wsaf_engine": "batched",
        "regulator_replay": "scan",
        "timestamp": timestamp,
    }


class TestLoadHistory:
    def test_missing_file_is_empty_history(self, bench, history_path):
        assert bench._load_history() == []
        assert not history_path.exists()

    def test_valid_history_passes_through(self, bench, history_path):
        rows = [_row(bench)]
        history_path.write_text(json.dumps(rows))
        assert bench._load_history() == rows

    def test_unparseable_json_backed_up(self, bench, history_path, capsys):
        history_path.write_text("{not json at all")
        assert bench._load_history() == []
        backup = history_path.with_suffix(".json.corrupt")
        assert backup.read_text() == "{not json at all"
        assert not history_path.exists()
        assert "corrupt" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "payload", ['{"rows": []}', '["just", "strings"]', "42"]
    )
    def test_wrong_shape_backed_up(self, bench, history_path, payload):
        history_path.write_text(payload)
        assert bench._load_history() == []
        assert history_path.with_suffix(".json.corrupt").exists()

    def test_append_after_corruption_starts_fresh(self, bench, history_path):
        history_path.write_text("corrupt!")
        bench._append_report([_row(bench)])
        history = json.loads(history_path.read_text())
        assert [r["git_sha"] for r in history] == ["abc123"]
        assert history_path.with_suffix(".json.corrupt").exists()

    def test_baseline_row_survives_corruption(self, bench, history_path):
        history_path.write_text('["oops"]')
        assert bench._baseline_row("scan") is None

    def test_append_extends_valid_history(self, bench, history_path):
        history_path.write_text(json.dumps([_row(bench, timestamp=1.0)]))
        later = _row(bench, timestamp=2.0)
        later["git_sha"] = "def456"
        bench._append_report([later])
        history = json.loads(history_path.read_text())
        assert {r["git_sha"] for r in history} == {"abc123", "def456"}


class TestShardsNormalization:
    def test_legacy_rows_backfilled_with_one_shard(self, bench, history_path):
        legacy = _row(bench, timestamp=1.0)
        assert "shards" not in legacy
        history_path.write_text(json.dumps([legacy]))
        bench._append_report([])
        history = json.loads(history_path.read_text())
        assert [r["shards"] for r in history] == [1]

    def test_shards_joins_the_row_key(self, bench, history_path):
        # Same (sha, variant) at different shard counts are distinct
        # rows; a re-measurement at the same count supersedes.
        rows = []
        for shards, timestamp in ((1, 1.0), (4, 1.0), (4, 2.0)):
            row = _row(bench, timestamp=timestamp)
            row["shards"] = shards
            rows.append(row)
        history_path.write_text(json.dumps(rows))
        bench._append_report([])
        history = json.loads(history_path.read_text())
        assert sorted(
            (r["shards"], r["timestamp"]) for r in history
        ) == [(1, 1.0), (4, 2.0)]

    def test_legacy_and_explicit_one_shard_dedupe(self, bench, history_path):
        legacy = _row(bench, timestamp=1.0)
        explicit = _row(bench, timestamp=2.0)
        explicit["shards"] = 1
        history_path.write_text(json.dumps([legacy, explicit]))
        bench._append_report([])
        history = json.loads(history_path.read_text())
        assert len(history) == 1
        assert history[0]["timestamp"] == 2.0


class TestEnvironmentStamp:
    def test_legacy_rows_backfilled_with_nulls(self, bench, history_path):
        legacy = _row(bench, timestamp=1.0)
        assert "cpu_count" not in legacy
        history_path.write_text(json.dumps([legacy]))
        bench._append_report([])
        (row,) = json.loads(history_path.read_text())
        assert row["cpu_count"] is None
        assert row["platform"] is None
        assert row["numpy_version"] is None

    def test_stamped_rows_pass_through(self, bench, history_path):
        stamped = _row(bench, timestamp=1.0)
        stamped.update(
            cpu_count=8, platform="Linux-test", numpy_version="1.26.0"
        )
        history_path.write_text(json.dumps([stamped]))
        bench._append_report([])
        (row,) = json.loads(history_path.read_text())
        assert row["cpu_count"] == 8
        assert row["platform"] == "Linux-test"
        assert row["numpy_version"] == "1.26.0"

    def test_environment_has_the_stamp_fields(self, bench):
        environment = bench._environment()
        assert set(environment) == {"cpu_count", "platform", "numpy_version"}
        assert environment["cpu_count"] >= 1
        assert environment["platform"]
        assert environment["numpy_version"]


class TestOverloadHistory:
    """``BENCH_overload.json`` row keying: ``(git_sha, policy, overload)``."""

    @pytest.fixture(scope="class")
    def overload_bench(self):
        return _load_overload_module()

    @pytest.fixture()
    def history_path(self, overload_bench, tmp_path, monkeypatch):
        path = tmp_path / "BENCH_overload.json"
        monkeypatch.setattr(overload_bench, "OUTPUT_PATH", path)
        return path

    def _row(self, policy="shed", overload=2.5, timestamp=1.0, sha="abc123"):
        return {
            "git_sha": sha,
            "policy": policy,
            "overload": overload,
            "timestamp": timestamp,
        }

    def test_missing_file_is_empty_history(self, overload_bench, history_path):
        assert overload_bench._load_history() == []
        assert not history_path.exists()

    def test_corrupt_file_backed_up(self, overload_bench, history_path, capsys):
        history_path.write_text("{not json")
        assert overload_bench._load_history() == []
        assert history_path.with_suffix(".json.corrupt").exists()
        assert "corrupt" in capsys.readouterr().out

    def test_rows_key_on_sha_policy_and_overload(
        self, overload_bench, history_path
    ):
        rows = [
            self._row("shed", 2.5, timestamp=1.0),
            self._row("shed", 4.0, timestamp=1.0),
            self._row("degrade", 2.5, timestamp=1.0),
            self._row("shed", 2.5, timestamp=2.0),  # re-measurement wins
        ]
        history_path.write_text(json.dumps(rows))
        overload_bench._append_report([])
        history = json.loads(history_path.read_text())
        assert sorted(
            (r["policy"], r["overload"], r["timestamp"]) for r in history
        ) == [("degrade", 2.5, 1.0), ("shed", 2.5, 2.0), ("shed", 4.0, 1.0)]

    def test_other_commits_rows_survive(self, overload_bench, history_path):
        history_path.write_text(
            json.dumps([self._row(sha="old001", timestamp=1.0)])
        )
        overload_bench._append_report(
            [self._row(sha="new002", timestamp=2.0)]
        )
        history = json.loads(history_path.read_text())
        assert {r["git_sha"] for r in history} == {"old001", "new002"}

    def test_legacy_rows_backfilled(self, overload_bench, history_path):
        legacy = {"timestamp": 1.0, "hh_recall": 0.9}
        history_path.write_text(json.dumps([legacy]))
        overload_bench._append_report([])
        (row,) = json.loads(history_path.read_text())
        assert row["git_sha"] == "unknown"
        assert row["policy"] == "oblivious"
        assert row["overload"] == 1.0
        assert row["cpu_count"] is None
        assert row["platform"] is None
        assert row["numpy_version"] is None

    def test_backfilled_legacy_row_superseded_by_keyed_row(
        self, overload_bench, history_path
    ):
        legacy = {"timestamp": 1.0}
        keyed = self._row("oblivious", 1.0, timestamp=2.0, sha="unknown")
        history_path.write_text(json.dumps([legacy, keyed]))
        overload_bench._append_report([])
        (row,) = json.loads(history_path.read_text())
        assert row["timestamp"] == 2.0

    def test_output_sorted_by_timestamp(self, overload_bench, history_path):
        rows = [
            self._row("degrade", 4.0, timestamp=3.0),
            self._row("shed", 2.5, timestamp=1.0),
            self._row("oblivious", 2.5, timestamp=2.0),
        ]
        history_path.write_text(json.dumps(rows))
        overload_bench._append_report([])
        history = json.loads(history_path.read_text())
        assert [r["timestamp"] for r in history] == [1.0, 2.0, 3.0]

    def test_environment_stamp_fields(self, overload_bench):
        environment = overload_bench._environment()
        assert set(environment) == {"cpu_count", "platform", "numpy_version"}
