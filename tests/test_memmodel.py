"""Tests for the memory-technology model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.memmodel import (
    DRAM,
    SRAM,
    TCAM,
    AccessAccountant,
    MemoryTechnology,
    ips_margin,
    sustainable_ips,
    technology_by_name,
)


class TestTechnology:
    def test_paper_speed_ratio_holds(self):
        # Section II: "SRAM is 10-20 times faster than DRAM".
        assert 10.0 <= SRAM.speed_ratio(DRAM) <= 20.0

    def test_tcam_fastest(self):
        assert TCAM.access_ns < SRAM.access_ns < DRAM.access_ns

    def test_dram_cheapest_per_mb(self):
        assert DRAM.cost_per_mb_usd < SRAM.cost_per_mb_usd < TCAM.cost_per_mb_usd

    def test_lookup_by_name(self):
        assert technology_by_name("dram") is DRAM
        assert technology_by_name("SRAM") is SRAM

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            technology_by_name("hbm")

    def test_invalid_technology_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryTechnology("bad", access_ns=0.0, cost_per_mb_usd=1.0, typical_capacity_mb=1.0)

    def test_accesses_per_second(self):
        assert DRAM.accesses_per_second() == pytest.approx(1e9 / DRAM.access_ns)


class TestMargins:
    def test_sustainable_ips_scales_with_probe_cost(self):
        assert sustainable_ips(DRAM, 4.0) == pytest.approx(sustainable_ips(DRAM, 2.0) / 2)

    def test_insertion_needs_an_access(self):
        with pytest.raises(ConfigurationError):
            sustainable_ips(DRAM, 0.5)

    def test_margin_at_line_rate(self):
        # At ~100 Mpps line rate, the DRAM margin is in the paper's 5-10 % band.
        margin = ips_margin(DRAM, 100e6, accesses_per_insertion=2.0)
        assert 0.05 <= margin <= 0.10

    def test_sram_margin_larger(self):
        assert ips_margin(SRAM, 1e6) > ips_margin(DRAM, 1e6)

    def test_margin_rejects_bad_pps(self):
        with pytest.raises(ConfigurationError):
            ips_margin(DRAM, 0.0)


class TestAccessAccountant:
    def test_counts_and_time(self):
        accountant = AccessAccountant(DRAM)
        accountant.record("sketch", reads=3, writes=1)
        accountant.record("wsaf", reads=2)
        assert accountant.total_accesses == 6
        assert accountant.modelled_seconds() == pytest.approx(6 * 60e-9)
        assert accountant.by_label() == {"sketch": 4, "wsaf": 2}

    def test_zero_record_not_labelled(self):
        accountant = AccessAccountant(SRAM)
        accountant.record("noop")
        assert accountant.by_label() == {}

    def test_reset(self):
        accountant = AccessAccountant(DRAM)
        accountant.record("x", reads=5)
        accountant.reset()
        assert accountant.total_accesses == 0
        assert accountant.by_label() == {}
