"""Scan-replay edge geometry and kernel-cache lifecycle tests.

The vectorized segmented-FSM replay (:mod:`repro.kernels.regulator_scan`)
shares the bit-identicality oracle in ``tests/test_kernels.py``; this file
adds the geometries where its whole-array machinery degenerates — narrow
vectors, 64-bit words, a single mega-stretch, empty and one-packet chunks —
plus regression coverage for the per-trace kernel caches: the stream cache
key must cover every config knob that changes stream contents (a stale hit
would silently replay another configuration's data), and
``clear_kernel_caches`` must actually drop the cached arrays.
"""

from __future__ import annotations

import pytest

from repro.core.instameasure import InstaMeasure, InstaMeasureConfig
from repro.core.multicore import MultiCoreInstaMeasure
from repro.kernels.batched import (
    _LAYOUT_ATTR,
    _SCAN_ATTR,
    _STREAM_ATTR,
    _stream_key,
    clear_kernel_caches,
)
from repro.traffic.synth import CaidaLikeConfig, build_caida_like_trace


@pytest.fixture(scope="module")
def trace():
    """A small saturation-rich mix (same shape as the kernels oracle)."""
    return build_caida_like_trace(
        CaidaLikeConfig(num_flows=2500, duration=8.0, seed=11)
    )


@pytest.fixture(scope="module")
def single_flow_trace():
    """Every packet belongs to one flow: one max-length stretch per chunk.

    All packets share one ``(word, offset)`` placement, so the scan sees a
    single word run whose whole chunk is one contested stretch — the
    longest possible lockstep column and the worst case for the chain and
    walk tables.
    """
    return build_caida_like_trace(
        CaidaLikeConfig(
            num_flows=1,
            duration=2.0,
            seed=5,
            max_flow_size=20_000,
            zipf_alpha=1.01,
        )
    )


def _config(**overrides) -> InstaMeasureConfig:
    defaults = dict(l1_memory_bytes=2048, wsaf_entries=1 << 12, seed=0)
    defaults.update(overrides)
    return InstaMeasureConfig(**defaults)


def _state(engine: InstaMeasure) -> "tuple":
    """Every observable piece of post-run state, comparable across engines."""
    reg = engine.regulator
    return (
        tuple(reg.l1.words),
        reg.l1.packets_encoded,
        reg.l1.saturations,
        tuple(tuple(bank.words) for bank in reg.l2),
        tuple(bank.packets_encoded for bank in reg.l2),
        tuple(bank.saturations for bank in reg.l2),
        reg.stats,
        engine.wsaf.estimates(),
        engine.wsaf.insertions,
    )


def _scan_matches_scalar(some_trace, **overrides) -> None:
    scalar = InstaMeasure(_config(engine="scalar", **overrides))
    scalar_result = scalar.process_trace(some_trace)
    scan = InstaMeasure(
        _config(engine="batched", regulator_replay="scan", **overrides)
    )
    scan_result = scan.process_trace(some_trace)
    assert scalar_result.packets == scan_result.packets
    assert _state(scalar) == _state(scan)


class TestScanEdgeGeometry:
    @pytest.mark.parametrize("vector_bits", [3, 4, 5])
    def test_narrow_vectors(self, trace, vector_bits):
        _scan_matches_scalar(trace, vector_bits=vector_bits)

    @pytest.mark.parametrize("vector_bits", [3, 8])
    def test_64bit_words(self, trace, vector_bits):
        _scan_matches_scalar(trace, word_bits=64, vector_bits=vector_bits)

    def test_narrow_vector_low_fill(self, trace):
        # saturation_bits == 2: the smallest jump-table order statistic.
        _scan_matches_scalar(trace, vector_bits=3, saturation_fill=0.5)

    def test_single_word_adversarial(self, single_flow_trace):
        _scan_matches_scalar(single_flow_trace)

    def test_single_word_adversarial_64bit(self, single_flow_trace):
        _scan_matches_scalar(single_flow_trace, word_bits=64, vector_bits=4)

    def test_one_packet_chunks(self, trace):
        # chunk_size=1: every chunk is a single one-packet stretch.
        small = trace.time_slice(0.0, 0.5)
        assert small.num_packets > 0
        _scan_matches_scalar(small, chunk_size=1)

    def test_empty_trace(self, trace):
        empty = trace.time_slice(-2.0, -1.0)
        assert empty.num_packets == 0
        engine = InstaMeasure(_config(engine="batched", regulator_replay="scan"))
        result = engine.process_trace(empty)
        assert result.packets == 0
        assert result.insertions == 0


#: One override per config knob that changes derived stream contents.
#: If any of these stopped landing in the stream cache key, the reuse
#: test below would replay stale data and diverge from a fresh run.
_KNOB_OVERRIDES = (
    dict(seed=3),
    dict(vector_bits=5),
    dict(saturation_fill=0.6),
    dict(word_bits=64),
    dict(l1_memory_bytes=4096),
    dict(chunk_size=512),
)


class TestKernelCacheLifecycle:
    def test_stream_key_covers_every_knob(self):
        """Each stream-affecting knob must change the cache key."""
        base = InstaMeasure(_config(engine="batched"))
        base_key = _stream_key(base, base.regulator.l1, base.config.chunk_size)
        for overrides in _KNOB_OVERRIDES:
            varied = InstaMeasure(_config(engine="batched", **overrides))
            varied_key = _stream_key(
                varied, varied.regulator.l1, varied.config.chunk_size
            )
            assert varied_key != base_key, (
                f"stream cache key ignores {sorted(overrides)} — a reused "
                "trace would replay stale streams"
            )

    @pytest.mark.parametrize(
        "overrides", _KNOB_OVERRIDES, ids=lambda o: ",".join(sorted(o))
    )
    def test_no_stale_replay_after_reconfigure(self, trace, overrides):
        """Re-running a warmed trace under a new config must not reuse it."""
        warm = InstaMeasure(_config(engine="batched", regulator_replay="scan"))
        warm.process_trace(trace)  # populates the per-trace caches
        assert getattr(trace, _STREAM_ATTR, None) is not None
        _scan_matches_scalar(trace, **overrides)

    def test_clear_kernel_caches_drops_attrs(self, trace):
        engine = InstaMeasure(_config(engine="batched", regulator_replay="scan"))
        engine.process_trace(trace)
        assert getattr(trace, _LAYOUT_ATTR, None) is not None
        assert getattr(trace, _STREAM_ATTR, None) is not None
        assert getattr(trace, _SCAN_ATTR, None) is not None
        clear_kernel_caches(trace)
        for attr in (_LAYOUT_ATTR, _STREAM_ATTR, _SCAN_ATTR):
            assert getattr(trace, attr, None) is None
        # Idempotent on a cold trace.
        clear_kernel_caches(trace)
        # And the next run rebuilds from scratch, still bit-identical.
        _scan_matches_scalar(trace)

    def test_multicore_teardown_clears_worker_queues(self, trace, monkeypatch):
        """Worker sub-traces die after the run; their caches must die too."""
        import repro.core.multicore as multicore

        cleared: "list" = []
        monkeypatch.setattr(
            multicore,
            "clear_kernel_caches",
            lambda queue_trace: cleared.append(queue_trace),
        )
        manager = MultiCoreInstaMeasure(2, _config(engine="batched"))
        result = manager.process_trace(trace)
        assert result.packets == trace.num_packets
        assert len(cleared) == 2
        # Each cleared object is a worker queue, not the caller's trace.
        assert all(queue is not trace for queue in cleared)
